//! Criterion benches of the real (host) MoG implementations: the serial
//! algorithm variants, precision, component counts, and the rayon
//! multi-threaded build — actual wall time on this machine, complementing
//! the simulator's modelled Tesla numbers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mogpu_frame::{Frame, Resolution, SceneBuilder};
use mogpu_mog::{parallel::ParallelMog, MogParams, Real, SerialMog, Variant};

fn frames(res: Resolution, n: usize) -> Vec<Frame<u8>> {
    SceneBuilder::new(res)
        .seed(5)
        .walkers(3)
        .build()
        .render_sequence(n)
        .0
        .into_frames()
}

fn bench_variants(c: &mut Criterion) {
    let res = Resolution::QVGA;
    let fs = frames(res, 4);
    let mut group = c.benchmark_group("serial_variants");
    group.throughput(Throughput::Elements(res.pixels() as u64));
    for variant in Variant::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(variant.name()),
            &variant,
            |b, &variant| {
                let mut mog =
                    SerialMog::<f64>::new(res, MogParams::default(), variant, fs[0].as_slice());
                let mut i = 1;
                b.iter(|| {
                    let mask = mog.process(&fs[i]);
                    i = 1 + i % (fs.len() - 1);
                    mask
                });
            },
        );
    }
    group.finish();
}

fn bench_precision<T: Real>(c: &mut Criterion, name: &str) {
    let res = Resolution::QVGA;
    let fs = frames(res, 4);
    let mut group = c.benchmark_group("serial_precision");
    group.throughput(Throughput::Elements(res.pixels() as u64));
    group.bench_function(name, |b| {
        let mut mog = SerialMog::<T>::new(
            res,
            MogParams::default(),
            Variant::Predicated,
            fs[0].as_slice(),
        );
        let mut i = 1;
        b.iter(|| {
            let mask = mog.process(&fs[i]);
            i = 1 + i % (fs.len() - 1);
            mask
        });
    });
    group.finish();
}

fn bench_components(c: &mut Criterion) {
    let res = Resolution::QVGA;
    let fs = frames(res, 4);
    let mut group = c.benchmark_group("serial_components");
    group.throughput(Throughput::Elements(res.pixels() as u64));
    for k in [3usize, 5] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            let mut mog =
                SerialMog::<f64>::new(res, MogParams::new(k), Variant::Sorted, fs[0].as_slice());
            let mut i = 1;
            b.iter(|| {
                let mask = mog.process(&fs[i]);
                i = 1 + i % (fs.len() - 1);
                mask
            });
        });
    }
    group.finish();
}

fn bench_parallel(c: &mut Criterion) {
    let res = Resolution::QVGA;
    let fs = frames(res, 4);
    let mut group = c.benchmark_group("parallel_vs_serial");
    group.throughput(Throughput::Elements(res.pixels() as u64));
    group.bench_function("serial", |b| {
        let mut mog =
            SerialMog::<f64>::new(res, MogParams::default(), Variant::Sorted, fs[0].as_slice());
        let mut i = 1;
        b.iter(|| {
            let mask = mog.process(&fs[i]);
            i = 1 + i % (fs.len() - 1);
            mask
        });
    });
    group.bench_function("rayon", |b| {
        let mut mog =
            ParallelMog::<f64>::new(res, MogParams::default(), Variant::Sorted, fs[0].as_slice());
        let mut i = 1;
        b.iter(|| {
            let mask = mog.process(&fs[i]);
            i = 1 + i % (fs.len() - 1);
            mask
        });
    });
    group.finish();
}

fn bench_adaptive(c: &mut Criterion) {
    use mogpu_mog::AdaptiveMog;
    let res = Resolution::QVGA;
    let fs = frames(res, 4);
    let mut group = c.benchmark_group("adaptive_vs_fixed");
    group.throughput(Throughput::Elements(res.pixels() as u64));
    group.bench_function("fixed_k5", |b| {
        let mut mog =
            SerialMog::<f64>::new(res, MogParams::new(5), Variant::NoSort, fs[0].as_slice());
        let mut i = 1;
        b.iter(|| {
            let mask = mog.process(&fs[i]);
            i = 1 + i % (fs.len() - 1);
            mask
        });
    });
    group.bench_function("adaptive_k5", |b| {
        let mut mog = AdaptiveMog::<f64>::new(res, MogParams::new(5), fs[0].as_slice());
        let mut i = 1;
        b.iter(|| {
            let mask = mog.process(&fs[i]);
            i = 1 + i % (fs.len() - 1);
            mask
        });
    });
    group.finish();
}

fn bench_morphology(c: &mut Criterion) {
    use mogpu_frame::{connected_components, open3};
    let res = Resolution::QVGA;
    let scene = mogpu_frame::SceneBuilder::new(res)
        .seed(3)
        .walkers(4)
        .build();
    let (_, mask) = scene.render(10);
    let mut group = c.benchmark_group("morphology");
    group.throughput(Throughput::Elements(res.pixels() as u64));
    group.bench_function("open3", |b| b.iter(|| open3(&mask)));
    group.bench_function("connected_components", |b| {
        b.iter(|| connected_components(&mask))
    });
    group.finish();
}

fn benches(c: &mut Criterion) {
    bench_variants(c);
    bench_precision::<f64>(c, "double");
    bench_precision::<f32>(c, "float");
    bench_components(c);
    bench_parallel(c);
    bench_adaptive(c);
    bench_morphology(c);
}

criterion_group! {
    name = cpu_mog;
    config = Criterion::default().sample_size(20);
    targets = benches
}
criterion_main!(cpu_mog);

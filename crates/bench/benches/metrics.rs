//! Criterion benches of the quality metrics (SSIM / MS-SSIM dominate
//! Table IV's experiment wall time).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mogpu_frame::{Frame, Resolution, SceneBuilder};
use mogpu_metrics::{mask_confusion, ms_ssim, mse, ssim};

fn pair(res: Resolution) -> (Frame<u8>, Frame<u8>) {
    let scene = SceneBuilder::new(res).seed(9).walkers(2).build();
    let (a, _) = scene.render(0);
    let (b, _) = scene.render(1);
    (a, b)
}

fn bench_metrics(c: &mut Criterion) {
    let mut group = c.benchmark_group("metrics");
    for res in [Resolution::QQVGA, Resolution::QVGA] {
        let (a, b) = pair(res);
        group.throughput(Throughput::Elements(res.pixels() as u64));
        group.bench_with_input(BenchmarkId::new("mse", res.to_string()), &res, |bch, _| {
            bch.iter(|| mse(&a, &b));
        });
        group.bench_with_input(BenchmarkId::new("ssim", res.to_string()), &res, |bch, _| {
            bch.iter(|| ssim(&a, &b));
        });
        group.bench_with_input(
            BenchmarkId::new("ms_ssim", res.to_string()),
            &res,
            |bch, _| {
                bch.iter(|| ms_ssim(&a, &b));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("mask_confusion", res.to_string()),
            &res,
            |bch, _| {
                bch.iter(|| mask_confusion(&a, &b));
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = metrics;
    config = Criterion::default().sample_size(10);
    targets = bench_metrics
}
criterion_main!(metrics);

//! Criterion benches of the SIMT simulator itself: launch cost per frame
//! for each kernel family (the interpreter's throughput bounds how large
//! an experiment the harness can run).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mogpu_core::{GpuMog, OptLevel};
use mogpu_frame::{Frame, Resolution, SceneBuilder};
use mogpu_mog::MogParams;
use mogpu_sim::GpuConfig;

fn frames(res: Resolution, n: usize) -> Vec<Frame<u8>> {
    SceneBuilder::new(res)
        .seed(6)
        .walkers(2)
        .build()
        .render_sequence(n)
        .0
        .into_frames()
}

fn bench_levels(c: &mut Criterion) {
    let res = Resolution::QQVGA;
    let fs = frames(res, 3);
    let mut group = c.benchmark_group("sim_launch_per_frame");
    group.throughput(Throughput::Elements(res.pixels() as u64));
    for level in [
        OptLevel::A,
        OptLevel::C,
        OptLevel::F,
        OptLevel::Windowed { group: 4 },
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(level.name()),
            &level,
            |b, &level| {
                let mut gpu = GpuMog::<f64>::new(
                    res,
                    MogParams::default(),
                    level,
                    fs[0].as_slice(),
                    GpuConfig::tesla_c2075(),
                )
                .unwrap();
                b.iter(|| gpu.process_all(&fs[1..]).unwrap().stats.warps);
            },
        );
    }
    group.finish();
}

fn bench_resolution_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_resolution_scaling");
    for res in [Resolution::TINY, Resolution::QQVGA] {
        let fs = frames(res, 2);
        group.throughput(Throughput::Elements(res.pixels() as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(res.to_string()),
            &res,
            |b, &res| {
                let mut gpu = GpuMog::<f64>::new(
                    res,
                    MogParams::default(),
                    OptLevel::F,
                    fs[0].as_slice(),
                    GpuConfig::tesla_c2075(),
                )
                .unwrap();
                b.iter(|| gpu.process_all(&fs[1..]).unwrap().stats.warps);
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = simulator;
    config = Criterion::default().sample_size(10);
    targets = bench_levels, bench_resolution_scaling
}
criterion_main!(simulator);

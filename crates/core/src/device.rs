//! Precision-generic device memory access.
//!
//! [`DeviceReal`] extends the algorithm-side [`Real`] trait with typed
//! loads/stores through a [`ThreadCtx`], so every kernel exists for both
//! the paper's default double precision and the single-precision study of
//! Section V-C.
//!
//! All methods are `#[track_caller]` so the simulator's slot analysis
//! attributes each access to the *kernel* source line, keeping warp-slot
//! alignment correct through this dispatch layer.

use mogpu_mog::Real;
use mogpu_sim::{Buffer, ThreadCtx};

/// A [`Real`] that can be moved between device memory and registers.
pub trait DeviceReal: Real {
    /// Loads element `idx` of `buf` from global memory.
    #[track_caller]
    fn ld(ctx: &mut ThreadCtx<'_>, buf: Buffer, idx: usize) -> Self;

    /// Stores element `idx` of `buf` to global memory.
    #[track_caller]
    fn st(ctx: &mut ThreadCtx<'_>, buf: Buffer, idx: usize, v: Self);

    /// Loads from block shared memory at byte offset `off`.
    #[track_caller]
    fn sh_ld(ctx: &mut ThreadCtx<'_>, off: usize) -> Self;

    /// Stores to block shared memory at byte offset `off`.
    #[track_caller]
    fn sh_st(ctx: &mut ThreadCtx<'_>, off: usize, v: Self);

    /// Charges `n` floating-point operations at this type's precision.
    #[track_caller]
    fn flop(ctx: &mut ThreadCtx<'_>, n: u32);
}

impl DeviceReal for f64 {
    #[track_caller]
    #[inline]
    fn ld(ctx: &mut ThreadCtx<'_>, buf: Buffer, idx: usize) -> Self {
        ctx.ld_f64(buf, idx)
    }

    #[track_caller]
    #[inline]
    fn st(ctx: &mut ThreadCtx<'_>, buf: Buffer, idx: usize, v: Self) {
        ctx.st_f64(buf, idx, v)
    }

    #[track_caller]
    #[inline]
    fn sh_ld(ctx: &mut ThreadCtx<'_>, off: usize) -> Self {
        ctx.sh_ld_f64(off)
    }

    #[track_caller]
    #[inline]
    fn sh_st(ctx: &mut ThreadCtx<'_>, off: usize, v: Self) {
        ctx.sh_st_f64(off, v)
    }

    #[track_caller]
    #[inline]
    fn flop(ctx: &mut ThreadCtx<'_>, n: u32) {
        ctx.flop64(n)
    }
}

impl DeviceReal for f32 {
    #[track_caller]
    #[inline]
    fn ld(ctx: &mut ThreadCtx<'_>, buf: Buffer, idx: usize) -> Self {
        ctx.ld_f32(buf, idx)
    }

    #[track_caller]
    #[inline]
    fn st(ctx: &mut ThreadCtx<'_>, buf: Buffer, idx: usize, v: Self) {
        ctx.st_f32(buf, idx, v)
    }

    #[track_caller]
    #[inline]
    fn sh_ld(ctx: &mut ThreadCtx<'_>, off: usize) -> Self {
        ctx.sh_ld_f32(off)
    }

    #[track_caller]
    #[inline]
    fn sh_st(ctx: &mut ThreadCtx<'_>, off: usize, v: Self) {
        ctx.sh_st_f32(off, v)
    }

    #[track_caller]
    #[inline]
    fn flop(ctx: &mut ThreadCtx<'_>, n: u32) {
        ctx.flop32(n)
    }
}

//! Fleet host pipeline: prices real MoG camera streams on every device
//! class of a heterogeneous fleet and hands the demands to the
//! [`mogpu_sim::fleet`] dispatcher.
//!
//! [`MultiGpuMog`](crate::MultiGpuMog) multiplexes streams onto *one*
//! simulated device and fails with an out-of-memory error when
//! over-committed. [`FleetPipeline`] is the generalization the ROADMAP
//! asks for: M devices of heterogeneous [`GpuConfig`] presets, streams
//! sharded by modelled load, and graceful *shedding* (attributed
//! `frame_dropped` events) instead of an OOM error when the fleet is
//! oversubscribed.
//!
//! The functional work runs **once**, on the first device class as the
//! reference — MoG masks are config-invariant (every preset shares the
//! warp width, block limits and segment size the kernels see), so
//! per-class re-execution would change nothing but timing. Per-class
//! timing comes from a one-frame **probe**: a real [`GpuMog`] pipeline
//! on each class whose measured kernel/transfer times give the class's
//! scaling ratio over the reference. A stream's per-class
//! [`StageTimes`]: the reference run's per-frame kernel times scaled by
//! the probe ratio, plus the probe's own per-frame transfer times (PCIe
//! and copy-engine differences are what make the classes heterogeneous
//! on the serving path). Memory footprints come from the probes'
//! [`GpuMog::device_allocated`].
//!
//! Like the multi-stream pipeline, the functional pass rides on
//! `GpuMog`'s cached launch plan ([`mogpu_sim::BatchLauncher`]): launch
//! validation and occupancy are derived once per stream, not per frame.

use crate::device::DeviceReal;
use crate::levels::OptLevel;
use crate::pipeline::{GpuMog, PipelineError};
use mogpu_frame::{Frame, Resolution};
use mogpu_mog::MogParams;
use mogpu_sim::fleet::{
    advise_fleet, fleet_report, FleetAdvisory, FleetOptions, FleetReport, FleetSpec, FleetStream,
};
use mogpu_sim::serving::{ServingWindowConfig, SloConfig};
use mogpu_sim::streams::{StageTimes, StreamInput, DOUBLE_BUFFER};
use mogpu_sim::GpuConfig;
use rayon::prelude::*;
use std::sync::Mutex;

/// Result of a fleet run: the sim-layer [`FleetReport`] plus the ranked
/// which-device-to-add advisories derived from it.
#[derive(Debug, Clone)]
pub struct FleetRunReport {
    /// The fleet serving report (per-device serving reports, shed
    /// records, drop events, merged histograms).
    pub report: FleetReport,
    /// Counterfactual advisories, best first ([`advise_fleet`]).
    pub advisories: Vec<FleetAdvisory>,
    /// Frames offered per stream (admitted or not), in stream order.
    pub frames_per_stream: Vec<usize>,
}

/// Real MoG streams dispatched across a fleet of heterogeneous
/// simulated devices.
///
/// ```
/// use mogpu_core::{FleetPipeline, OptLevel};
/// use mogpu_frame::{Resolution, SceneBuilder};
/// use mogpu_mog::MogParams;
///
/// let scenes: Vec<_> = (0..2u64)
///     .map(|s| {
///         SceneBuilder::new(Resolution::TINY).seed(s).walkers(1).build()
///             .render_sequence(4).0.into_frames()
///     })
///     .collect();
/// let seeds: Vec<&[u8]> = scenes.iter().map(|f| f[0].as_slice()).collect();
/// let mut fleet = FleetPipeline::<f64>::new(
///     Resolution::TINY,
///     MogParams::default(),
///     OptLevel::F,
///     &seeds,
///     &["c2075", "embedded"],
/// ).unwrap();
/// let frames: Vec<Vec<_>> = scenes.iter().map(|f| f[1..].to_vec()).collect();
/// let run = fleet.process_all(&frames).unwrap();
/// assert_eq!(run.report.streams_total(), 2);
/// ```
pub struct FleetPipeline<T: DeviceReal> {
    resolution: Resolution,
    params: MogParams,
    level: OptLevel,
    spec: FleetSpec,
    class_cfgs: Vec<GpuConfig>,
    streams: Vec<GpuMog<T>>,
    arrival_period: f64,
    buffers: usize,
    slo: SloConfig,
    window: ServingWindowConfig,
    headroom: f64,
}

impl<T: DeviceReal> FleetPipeline<T> {
    /// Builds the fleet from [`GpuConfig::preset`] keys (duplicates add
    /// instances of a class) and allocates one reference-class
    /// [`GpuMog`] per entry of `seed_frames` for the functional pass.
    ///
    /// # Errors
    /// Unknown preset keys, an empty fleet or stream set, and any
    /// per-stream pipeline construction error.
    pub fn new(
        resolution: Resolution,
        params: MogParams,
        level: OptLevel,
        seed_frames: &[&[u8]],
        device_keys: &[&str],
    ) -> Result<Self, PipelineError> {
        if seed_frames.is_empty() {
            return Err(PipelineError::Config(
                "fleet pipeline needs at least one stream".into(),
            ));
        }
        if device_keys.is_empty() {
            return Err(PipelineError::Config(
                "fleet pipeline needs at least one device".into(),
            ));
        }
        let (spec, class_cfgs) =
            FleetSpec::from_preset_keys(device_keys).map_err(PipelineError::Config)?;
        // The functional pass prices streams on the reference class
        // (class 0); its device memory is irrelevant here, so lift the
        // budget — admission control, not construction, decides fit.
        let mut ref_cfg = class_cfgs[0].clone();
        ref_cfg.device_mem_bytes = usize::MAX;
        let mut streams = Vec::with_capacity(seed_frames.len());
        for seed in seed_frames {
            streams.push(GpuMog::<T>::new(
                resolution,
                params,
                level,
                seed,
                ref_cfg.clone(),
            )?);
        }
        Ok(FleetPipeline {
            resolution,
            params,
            level,
            spec,
            class_cfgs,
            streams,
            arrival_period: 0.0,
            buffers: DOUBLE_BUFFER,
            slo: SloConfig::default(),
            window: ServingWindowConfig::default(),
            headroom: 1.0,
        })
    }

    /// Paces every stream at one frame per `period` seconds.
    pub fn with_arrival_period(mut self, period: f64) -> Self {
        self.arrival_period = period.max(0.0);
        self
    }

    /// Sets the in-flight device buffer count per stream (min 1).
    pub fn with_buffers(mut self, buffers: usize) -> Self {
        self.buffers = buffers.max(1);
        self
    }

    /// Sets the SLO every stream is judged against.
    pub fn with_slo(mut self, slo: SloConfig) -> Self {
        self.slo = slo;
        self
    }

    /// Sets the serving snapshot window (seconds; 0 = auto).
    pub fn with_window(mut self, window_s: f64) -> Self {
        self.window = ServingWindowConfig {
            window_s: window_s.max(0.0),
        };
        self
    }

    /// Sets the dispatcher's engine headroom (load admission ceiling).
    pub fn with_headroom(mut self, headroom: f64) -> Self {
        self.headroom = headroom.max(0.0);
        self
    }

    /// Overrides every device's memory budget in bytes — the lever the
    /// oversubscription tests and demos use.
    pub fn with_device_mem(mut self, bytes: usize) -> Self {
        self.spec = self.spec.clone().with_budget(bytes);
        self
    }

    /// Number of streams offered to the fleet.
    pub fn stream_count(&self) -> usize {
        self.streams.len()
    }

    /// Number of devices in the fleet.
    pub fn device_count(&self) -> usize {
        self.spec.devices.len()
    }

    /// Runs the functional pass (stream-parallel, reference class),
    /// probes each class's timing, shards the streams across the fleet
    /// and assembles the [`FleetRunReport`] with advisories.
    ///
    /// # Errors
    /// Mismatched stream count, empty streams, per-stream pipeline
    /// errors, and demand validation errors from the dispatcher.
    pub fn process_all(
        &mut self,
        frames_per_stream: &[Vec<Frame<u8>>],
    ) -> Result<FleetRunReport, PipelineError> {
        if frames_per_stream.len() != self.streams.len() {
            return Err(PipelineError::Config(format!(
                "{} frame sequences for {} streams",
                frames_per_stream.len(),
                self.streams.len()
            )));
        }
        if frames_per_stream.iter().any(Vec::is_empty) {
            return Err(PipelineError::Config(
                "every stream needs at least one frame".into(),
            ));
        }

        // Functional + reference-timing pass, stream-parallel exactly as
        // in MultiGpuMog.
        type Slot<'a, T> = Mutex<(&'a mut GpuMog<T>, &'a [Frame<u8>])>;
        let slots: Vec<Slot<'_, T>> = self
            .streams
            .iter_mut()
            .zip(frames_per_stream)
            .map(|(gpu, frames)| Mutex::new((gpu, frames.as_slice())))
            .collect();
        let results: Vec<Result<_, PipelineError>> = (0..slots.len())
            .into_par_iter()
            .map(|s| {
                let mut slot = slots[s].lock().expect("stream slot poisoned");
                let (gpu, frames) = &mut *slot;
                gpu.process_all(frames)
            })
            .collect();
        let mut reports = Vec::with_capacity(results.len());
        for r in results {
            reports.push(r?);
        }

        // One-frame probe per class: measured kernel + transfer times on
        // that class, and the stream memory footprint.
        let probe_frames = &frames_per_stream[0];
        let seed = probe_frames[0].as_slice();
        let mut probes = Vec::with_capacity(self.class_cfgs.len());
        for cfg in &self.class_cfgs {
            let mut probe_cfg = cfg.clone();
            probe_cfg.device_mem_bytes = usize::MAX;
            let mut probe =
                GpuMog::<T>::new(self.resolution, self.params, self.level, seed, probe_cfg)?;
            let r = probe.process_all(&probe_frames[..1])?;
            probes.push((
                r.kernel_time_per_frame(),
                r.h2d_per_frame,
                r.d2h_per_frame,
                probe.device_allocated(),
            ));
        }
        let ref_probe_kernel = probes[0].0;

        // Per-class demands: reference per-frame kernel times scaled by
        // the class's probe ratio; transfers straight from the probe.
        let demands: Vec<FleetStream> = reports
            .iter()
            .map(|r| {
                let per_class = probes
                    .iter()
                    .map(|&(probe_kernel, h2d, d2h, _)| {
                        let ratio = if ref_probe_kernel > 0.0 {
                            probe_kernel / ref_probe_kernel
                        } else {
                            1.0
                        };
                        StreamInput {
                            stages: r
                                .per_frame_kernel_times
                                .iter()
                                .map(|&k| StageTimes {
                                    h2d,
                                    kernel: k * ratio,
                                    d2h,
                                })
                                .collect(),
                            arrival_period: self.arrival_period,
                        }
                    })
                    .collect();
                FleetStream {
                    per_class,
                    mem_per_class: probes.iter().map(|&(_, _, _, mem)| mem).collect(),
                }
            })
            .collect();

        let opts = FleetOptions {
            slo: self.slo,
            window: self.window,
            buffers: self.buffers,
            site: format!("level {}", self.level),
            headroom: self.headroom,
        };
        let report = fleet_report(&self.spec, &demands, &opts)
            .map_err(|e| PipelineError::Config(format!("invalid fleet demand: {e}")))?;
        let advisories = advise_fleet(&report);
        Ok(FleetRunReport {
            report,
            advisories,
            frames_per_stream: frames_per_stream.iter().map(Vec::len).collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mogpu_frame::SceneBuilder;
    use mogpu_sim::serving::EventKind;

    fn scene_frames(seed: u64, n: usize) -> Vec<Frame<u8>> {
        SceneBuilder::new(Resolution::TINY)
            .seed(seed)
            .walkers(2)
            .build()
            .render_sequence(n)
            .0
            .into_frames()
    }

    fn fleet(
        n_streams: u64,
        frames: usize,
        keys: &[&str],
    ) -> (FleetPipeline<f64>, Vec<Vec<Frame<u8>>>) {
        let scenes: Vec<Vec<Frame<u8>>> = (0..n_streams).map(|s| scene_frames(s, frames)).collect();
        let seeds: Vec<&[u8]> = scenes.iter().map(|f| f[0].as_slice()).collect();
        let fleet = FleetPipeline::<f64>::new(
            Resolution::TINY,
            MogParams::default(),
            OptLevel::F,
            &seeds,
            keys,
        )
        .unwrap();
        let rest: Vec<Vec<Frame<u8>>> = scenes.iter().map(|f| f[1..].to_vec()).collect();
        (fleet, rest)
    }

    #[test]
    fn fleet_admits_light_load_and_reports_heterogeneous_devices() {
        let (fleet, frames) = fleet(3, 4, &["c2075", "embedded", "hbm"]);
        let mut fleet = fleet.with_arrival_period(0.5); // very light live load
        let run = fleet.process_all(&frames).unwrap();
        assert_eq!(run.report.devices.len(), 3);
        assert_eq!(run.report.streams_total(), 3);
        assert_eq!(run.report.streams_admitted(), 3);
        assert!(run.report.shed.is_empty());
        // Heterogeneous pricing: the embedded class must be slower than
        // the HBM class for the same stream.
        let d = &run.report.demands[0];
        let kernel_of = |c: usize| d.per_class[c].stages[0].kernel;
        assert!(kernel_of(1) > kernel_of(2), "embedded slower than hbm");
        assert_eq!(run.advisories.len(), 3);
    }

    #[test]
    fn oversubscribed_fleet_sheds_with_drop_events_not_oom() {
        // One tiny memory budget forces shedding by memory: with 1 KiB
        // per device nothing fits, so every stream sheds gracefully.
        let (fleet, frames) = fleet(3, 3, &["c2075", "embedded"]);
        let mut fleet = fleet.with_device_mem(1024);
        let run = fleet.process_all(&frames).unwrap();
        assert_eq!(run.report.streams_admitted(), 0);
        assert_eq!(run.report.shed.len(), 3);
        assert!(run.report.frames_dropped() > 0);
        assert!(run
            .report
            .drop_events
            .iter()
            .all(|e| e.event == EventKind::FrameDropped));
        for s in &run.report.shed {
            assert_eq!(s.reason, "memory");
        }
    }

    #[test]
    fn mismatched_inputs_are_rejected() {
        let (mut fleet, _) = fleet(2, 3, &["c2075"]);
        assert!(matches!(
            fleet.process_all(&[]),
            Err(PipelineError::Config(_))
        ));
        assert!(matches!(
            fleet.process_all(&[Vec::new(), Vec::new()]),
            Err(PipelineError::Config(_))
        ));
        let err = FleetPipeline::<f64>::new(
            Resolution::TINY,
            MogParams::default(),
            OptLevel::F,
            &[&[0u8; 4][..]],
            &["nonsense"],
        );
        assert!(matches!(err, Err(PipelineError::Config(_))));
    }
}

//! Machine-readable run profiling: [`ProfileMode`], [`ProfileReport`],
//! and per-level bottleneck classification.
//!
//! Profiling is opt-in per pipeline via
//! [`GpuMog::set_profile_mode`](crate::GpuMog::set_profile_mode). When
//! off (the default), launches take the plain fast path — no site maps,
//! no per-launch record keeping — so an unprofiled run has the same cost
//! as before the profiler existed. When on, every launch runs with
//! [`mogpu_sim::LaunchOptions::profile_sites`], and `process_all`
//! additionally assembles a [`ProfileReport`] retrievable with
//! [`GpuMog::take_profile_report`](crate::GpuMog::take_profile_report).

use mogpu_sim::advisor::{advise, roofline, AdvisorInput, Advisory, Roofline};
use mogpu_sim::dma::{FrameSpans, OverlapMode, PipelineTiming};
use mogpu_sim::profile::render_rows;
use mogpu_sim::stallreasons::{
    dma_starvation, kernel_stalls, site_stalls, SiteStallRow, StallBreakdown,
};
use mogpu_sim::telemetry::{sample_pipeline, KernelSlice, PipelineTelemetry, TelemetryConfig};
use mogpu_sim::timing::Bound;
use mogpu_sim::{
    DerivedMetrics, GpuConfig, HotspotRow, KernelStats, KernelTiming, Occupancy, SiteProfile,
};
use serde::Serialize;

/// Whether a pipeline collects profiling data.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum ProfileMode {
    /// No collection; launches take the plain fast path.
    #[default]
    Off,
    /// Per-site hotspot aggregation plus per-launch records.
    On,
}

impl ProfileMode {
    /// True when profiling is enabled.
    pub fn is_on(self) -> bool {
        self == ProfileMode::On
    }
}

/// What limits a level's end-to-end frame rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Bottleneck {
    /// PCIe transfers take longer than the kernel (per frame, under the
    /// level's overlap mode).
    Transfer,
    /// Instruction issue throughput.
    Issue,
    /// DRAM bandwidth.
    Bandwidth,
    /// Memory latency / occupancy.
    Latency,
}

impl std::fmt::Display for Bottleneck {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Bottleneck::Transfer => "transfer-bound",
            Bottleneck::Issue => "issue-bound",
            Bottleneck::Bandwidth => "bandwidth-bound",
            Bottleneck::Latency => "latency-bound",
        };
        f.write_str(s)
    }
}

/// Classifies the end-to-end bottleneck of a level: transfers if they
/// exceed the per-frame kernel time under the level's overlap mode
/// (serial pipelines pay both directions, double-buffered ones only the
/// slower direction), otherwise the kernel's dominating roofline bound.
pub fn classify_bottleneck(
    kernel_per_frame: f64,
    t_h2d: f64,
    t_d2h: f64,
    overlap: OverlapMode,
    bound: Bound,
) -> Bottleneck {
    let transfer = match overlap {
        OverlapMode::Sequential => t_h2d + t_d2h,
        OverlapMode::DoubleBuffered => t_h2d.max(t_d2h),
    };
    if transfer > kernel_per_frame {
        Bottleneck::Transfer
    } else {
        match bound {
            Bound::Issue => Bottleneck::Issue,
            Bound::Bandwidth => Bottleneck::Bandwidth,
            Bound::Latency => Bottleneck::Latency,
        }
    }
}

/// Record of one kernel launch within a profiled run.
#[derive(Debug, Clone, Serialize)]
pub struct LaunchProfile {
    /// Launch index within the run.
    pub index: usize,
    /// Frames this launch processed (1, or the group size at level W).
    pub frames: usize,
    /// Raw counters.
    pub stats: KernelStats,
    /// Derived profiler metrics.
    pub metrics: DerivedMetrics,
    /// Occupancy under the launch configuration.
    pub occupancy: Occupancy,
    /// Roofline time decomposition.
    pub timing: KernelTiming,
}

/// The full machine-readable result of one profiled run.
#[derive(Debug, Clone, Serialize)]
pub struct ProfileReport {
    /// Optimization level name ("A".."F", "W(g)", "adaptive").
    pub level: String,
    /// Frames processed.
    pub frames: usize,
    /// Transfer scheduling mode of the run.
    pub overlap: OverlapMode,
    /// Counters summed over all launches.
    pub stats: KernelStats,
    /// Derived metrics of the summed counters.
    pub metrics: DerivedMetrics,
    /// Kernel occupancy.
    pub occupancy: Occupancy,
    /// Roofline decomposition of the summed counters.
    pub timing: KernelTiming,
    /// End-to-end bottleneck classification.
    pub bottleneck: Bottleneck,
    /// Modelled host-to-device DMA seconds per frame.
    pub h2d_per_frame: f64,
    /// Modelled device-to-host DMA seconds per frame.
    pub d2h_per_frame: f64,
    /// Pipeline makespan summary.
    pub pipeline: PipelineTiming,
    /// Steady-state frames per second.
    pub fps: f64,
    /// Cumulative frame rate after each frame completes (frames so far
    /// divided by that frame's download-done time).
    pub frame_rate_history: Vec<f64>,
    /// Per-frame stage intervals, exportable as a Chrome trace.
    pub schedule: Vec<FrameSpans>,
    /// Per-launch records.
    pub launches: Vec<LaunchProfile>,
    /// Source hotspots merged over all launches, ranked by issue cycles.
    pub hotspots: Vec<HotspotRow>,
    /// Time-resolved per-SM and device-wide counter series over the
    /// pipeline schedule (same clock as `schedule` / the Chrome trace).
    pub telemetry: PipelineTelemetry,
    /// Stall-reason decomposition of the modelled kernel time (buckets
    /// sum to `timing.total`).
    pub stalls: StallBreakdown,
    /// The kernel decomposition distributed over source sites (rows sum
    /// to `timing.total`).
    pub site_stalls: Vec<SiteStallRow>,
    /// Compute-engine idle seconds over the run (DMA/overlap
    /// starvation) — a pipeline-level stall outside the kernel identity.
    pub dma_starvation: f64,
    /// Roofline placement of the summed counters.
    pub roofline: Roofline,
    /// Ranked recommendations from the rules engine.
    pub advisories: Vec<Advisory>,
}

impl ProfileReport {
    /// Assembles a report from the pieces a profiled `process_all`
    /// collects.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn assemble(
        level: String,
        overlap: OverlapMode,
        stats: KernelStats,
        occupancy: Occupancy,
        h2d_per_frame: f64,
        d2h_per_frame: f64,
        schedule: Vec<FrameSpans>,
        launches: Vec<LaunchProfile>,
        sites: SiteProfile,
        dataflow: &[mogpu_sim::FusionCandidate],
        cfg: &GpuConfig,
    ) -> Self {
        let frames = schedule.len();
        let pipeline = mogpu_sim::dma::timing_of(&schedule);
        let timing = mogpu_sim::kernel_time(&stats, &occupancy, cfg);
        let kernel_per_frame = if frames == 0 {
            0.0
        } else {
            timing.total / frames as f64
        };
        let bottleneck = classify_bottleneck(
            kernel_per_frame,
            h2d_per_frame,
            d2h_per_frame,
            overlap,
            timing.bound,
        );
        let frame_rate_history = schedule
            .iter()
            .enumerate()
            .map(|(i, f)| {
                let done = f.d2h.end();
                if done > 0.0 {
                    (i + 1) as f64 / done
                } else {
                    0.0
                }
            })
            .collect();
        let fps = if pipeline.per_frame > 0.0 {
            1.0 / pipeline.per_frame
        } else {
            0.0
        };
        let metrics = DerivedMetrics::from_stats(&stats, cfg);
        // Launch l's counters are attributed to the next `launches[l]
        // .frames` kernel spans of the schedule, an even share to each
        // (one grouped launch spans several scheduled frame slots).
        let telemetry = {
            let mut slices = Vec::with_capacity(frames);
            let mut frame = 0;
            for lp in &launches {
                let share = if lp.frames > 0 {
                    1.0 / lp.frames as f64
                } else {
                    0.0
                };
                for _ in 0..lp.frames {
                    if let Some(f) = schedule.get(frame) {
                        slices.push(KernelSlice::from_stats(
                            f.kernel,
                            &lp.stats,
                            &lp.occupancy,
                            cfg,
                            share,
                        ));
                    }
                    frame += 1;
                }
            }
            let copies: Vec<mogpu_sim::dma::Span> =
                schedule.iter().flat_map(|f| [f.h2d, f.d2h]).collect();
            sample_pipeline(&slices, &copies, cfg, &TelemetryConfig::default())
        };
        let hotspots = sites.ranked_rows();
        let stalls = kernel_stalls(&stats, &timing, &occupancy);
        let site_stall_rows = site_stalls(&hotspots, &stats, &timing, &occupancy);
        let starvation = dma_starvation(&schedule);
        let roof = roofline(&stats, &timing, cfg);
        let advisories = advise(&AdvisorInput {
            stats: &stats,
            metrics: &metrics,
            occupancy: &occupancy,
            timing: &timing,
            stalls: &stalls,
            roofline: &roof,
            hotspots: &hotspots,
            dataflow,
            overlap,
            h2d_per_frame,
            d2h_per_frame,
            dma_starvation: starvation,
            frames,
            cfg,
        });
        ProfileReport {
            level,
            frames,
            overlap,
            stats,
            metrics,
            occupancy,
            timing,
            bottleneck,
            h2d_per_frame,
            d2h_per_frame,
            pipeline,
            fps,
            frame_rate_history,
            schedule,
            launches,
            hotspots,
            telemetry,
            stalls,
            site_stalls: site_stall_rows,
            dma_starvation: starvation,
            roofline: roof,
            advisories,
        }
    }

    /// Human-readable summary: bottleneck, roofline decomposition, frame
    /// rate, and the top-`n` hotspot table.
    pub fn text(&self, n: usize) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "level {}: {} frames, {:.1} fps ({:.3} ms/frame), {}\n",
            self.level,
            self.frames,
            self.fps,
            self.pipeline.per_frame * 1e3,
            self.bottleneck,
        ));
        out.push_str(&format!(
            "  kernel bounds (run total): issue {:.3} ms, bandwidth {:.3} ms, latency {:.3} ms ({:?} binds)\n",
            self.timing.t_issue * 1e3,
            self.timing.t_mem_bw * 1e3,
            self.timing.t_mem_lat * 1e3,
            self.timing.bound,
        ));
        out.push_str(&format!(
            "  transfers: h2d {:.3} ms + d2h {:.3} ms per frame ({:?}); kernel busy {:.0}% of makespan\n",
            self.h2d_per_frame * 1e3,
            self.d2h_per_frame * 1e3,
            self.overlap,
            self.pipeline.kernel_utilization * 100.0,
        ));
        out.push_str(&format!(
            "  branch efficiency {:.1}%, memory access efficiency {:.1}%, {} store tx, {} total tx\n",
            self.metrics.branch_efficiency * 100.0,
            self.metrics.mem_access_efficiency * 100.0,
            self.metrics.store_transactions,
            self.metrics.total_transactions,
        ));
        out.push_str(&format!(
            "  occupancy {:.0}% ({} resident warps/SM, {:?}-limited)\n",
            self.occupancy.occupancy * 100.0,
            self.occupancy.resident_warps,
            self.occupancy.limiter,
        ));
        let (reason, secs) = self.stalls.dominant();
        out.push_str(&format!(
            "  stalls: {} dominates at {:.3} ms of {:.3} ms; DMA starvation {:.3} ms\n",
            reason,
            secs * 1e3,
            self.stalls.sum() * 1e3,
            self.dma_starvation * 1e3,
        ));
        if let Some(top) = self.advisories.first() {
            out.push_str(&format!(
                "  advisor: {:?} ({}) — est. {:.3} ms saved ({:.2}x)\n",
                top.transform,
                top.rule,
                top.estimated_benefit_s * 1e3,
                top.estimated_speedup,
            ));
        }
        if !self.hotspots.is_empty() {
            out.push_str(&format!("  top {} hotspots:\n", n.min(self.hotspots.len())));
            for line in render_rows(&self.hotspots, n).lines() {
                out.push_str("    ");
                out.push_str(line);
                out.push('\n');
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_bound_when_dma_dominates() {
        let b = classify_bottleneck(
            1.0e-3,
            2.0e-3,
            2.0e-3,
            OverlapMode::DoubleBuffered,
            Bound::Issue,
        );
        assert_eq!(b, Bottleneck::Transfer);
        // Overlap hides the slower direction only; sequential pays both.
        let seq = classify_bottleneck(
            3.0e-3,
            2.0e-3,
            2.0e-3,
            OverlapMode::Sequential,
            Bound::Issue,
        );
        assert_eq!(seq, Bottleneck::Transfer);
        let ovl = classify_bottleneck(
            3.0e-3,
            2.0e-3,
            2.0e-3,
            OverlapMode::DoubleBuffered,
            Bound::Issue,
        );
        assert_eq!(ovl, Bottleneck::Issue);
    }

    #[test]
    fn kernel_bound_maps_through() {
        for (bound, expect) in [
            (Bound::Issue, Bottleneck::Issue),
            (Bound::Bandwidth, Bottleneck::Bandwidth),
            (Bound::Latency, Bottleneck::Latency),
        ] {
            let b = classify_bottleneck(5.0e-3, 1.0e-3, 1.0e-3, OverlapMode::Sequential, bound);
            assert_eq!(b, expect);
        }
    }
}

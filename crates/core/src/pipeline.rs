//! The host-side frame pipeline and the library's main entry point,
//! [`GpuMog`].
//!
//! Mirrors the paper's host loop: Gaussian parameters are initialized once
//! and live in GPU global memory for the whole run (they never cross
//! PCIe); each frame is DMA-uploaded, the level's kernel is launched, and
//! the foreground mask is DMA-downloaded. Depending on the optimization
//! level the transfers are scheduled sequentially (A, B) or double-
//! buffered against kernel execution (C onward, Fig. 5), and frames are
//! processed singly or in windowed groups (level W).

use crate::device::DeviceReal;
use crate::kernels::{FramePass, MorphKernel, MorphOp, ScanKernel, SortedKernel, TiledKernel};
use crate::layout::DeviceModel;
use crate::levels::OptLevel;
use crate::profile::{LaunchProfile, ProfileMode, ProfileReport};
use mogpu_frame::{Frame, Mask, Resolution};
use mogpu_mog::{HostModel, MogParams, ResolvedParams};
use mogpu_sim::dma::{pipeline_schedule, timing_of, transfer_time, PipelineTiming};
use mogpu_sim::telemetry::{sample_schedule, PipelineTelemetry, TelemetryConfig};
use mogpu_sim::{
    BatchLauncher, Buffer, DataflowGraph, DataflowRecorder, DerivedMetrics, DeviceMemory,
    GpuConfig, IntervalSet, KernelStats, LaunchConfig, LaunchError, LaunchOptions, LaunchReport,
    MemoryError, Occupancy, SanReport, SiteProfile,
};

/// Threads per block, as the paper selects.
pub const THREADS_PER_BLOCK: u32 = 128;

/// Errors from pipeline construction or execution.
#[derive(Debug)]
pub enum PipelineError {
    /// Invalid user configuration.
    Config(String),
    /// Device allocation failed.
    Memory(MemoryError),
    /// Kernel launch rejected.
    Launch(LaunchError),
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::Config(m) => write!(f, "pipeline configuration error: {m}"),
            PipelineError::Memory(e) => write!(f, "device memory error: {e}"),
            PipelineError::Launch(e) => write!(f, "kernel launch error: {e}"),
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<MemoryError> for PipelineError {
    fn from(e: MemoryError) -> Self {
        PipelineError::Memory(e)
    }
}

impl From<LaunchError> for PipelineError {
    fn from(e: LaunchError) -> Self {
        PipelineError::Launch(e)
    }
}

/// Aggregate result of processing a frame sequence.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Foreground masks, one per processed frame.
    pub masks: Vec<Mask>,
    /// Frames processed.
    pub frames: usize,
    /// Profiler counters summed over all launches.
    pub stats: KernelStats,
    /// Kernel occupancy (identical across launches of a run).
    pub occupancy: Occupancy,
    /// Modelled kernel execution time, summed (seconds).
    pub kernel_time_total: f64,
    /// Modelled kernel seconds attributed to each frame, in order (a
    /// grouped level-W launch's time is split evenly across its group).
    pub per_frame_kernel_times: Vec<f64>,
    /// Modelled per-direction DMA time per frame (seconds).
    pub h2d_per_frame: f64,
    /// Modelled device-to-host DMA time per frame (seconds).
    pub d2h_per_frame: f64,
    /// End-to-end pipeline schedule under the level's overlap mode.
    pub pipeline: PipelineTiming,
    /// Derived profiler metrics (branch/memory efficiency, transactions).
    pub metrics: DerivedMetrics,
    /// Time-resolved per-SM and device-wide counter series over the
    /// run's pipeline schedule (always collected; the aggregate counters
    /// distributed over the scheduled spans).
    pub telemetry: PipelineTelemetry,
}

impl RunReport {
    /// Modelled kernel seconds per frame.
    pub fn kernel_time_per_frame(&self) -> f64 {
        if self.frames == 0 {
            0.0
        } else {
            self.kernel_time_total / self.frames as f64
        }
    }

    /// Modelled end-to-end GPU seconds per frame (transfers included,
    /// scheduled per the level's overlap mode).
    pub fn gpu_time_per_frame(&self) -> f64 {
        self.pipeline.per_frame
    }

    /// Speedup of this run over a CPU time for the same frame count.
    pub fn speedup_over(&self, cpu_seconds_per_frame: f64) -> f64 {
        if self.pipeline.per_frame == 0.0 {
            f64::INFINITY
        } else {
            cpu_seconds_per_frame / self.pipeline.per_frame
        }
    }
}

/// A GPU background subtractor at a chosen optimization level.
///
/// ```
/// use mogpu_core::{GpuMog, OptLevel};
/// use mogpu_frame::{Resolution, SceneBuilder};
/// use mogpu_mog::MogParams;
/// use mogpu_sim::GpuConfig;
///
/// let scene = SceneBuilder::new(Resolution::TINY).walkers(1).build();
/// let (frames, _) = scene.render_sequence(6);
/// let frames = frames.into_frames();
/// let mut gpu = GpuMog::<f64>::new(
///     Resolution::TINY,
///     MogParams::default(),
///     OptLevel::F,
///     frames[0].as_slice(),
///     GpuConfig::tesla_c2075(),
/// ).unwrap();
/// let report = gpu.process_all(&frames[1..]).unwrap();
/// assert_eq!(report.masks.len(), 5);
/// assert!(report.gpu_time_per_frame() > 0.0);
/// ```
#[derive(Debug)]
pub struct GpuMog<T: DeviceReal> {
    cfg: GpuConfig,
    level: OptLevel,
    params: MogParams,
    prm: ResolvedParams<T>,
    resolution: Resolution,
    mem: DeviceMemory,
    model: DeviceModel<T>,
    frame_bufs: Vec<Buffer>,
    fg_bufs: Vec<Buffer>,
    threads_per_block: u32,
    /// Launch plan cached across frames: the grid and kernel resources
    /// are fixed by (resolution, level, k, block size), so grid
    /// validation and occupancy derivation happen once per run instead
    /// of once per frame. Cleared when the block size changes.
    launcher: Option<BatchLauncher>,
    profile: ProfileMode,
    last_profile: Option<ProfileReport>,
    sanitize: bool,
    last_san: Option<SanReport>,
    /// Cross-launch dataflow recorder (None = recording off, the
    /// default; launches then skip access capture entirely).
    dataflow: Option<DataflowRecorder>,
    /// Morphological-opening post-pass buffers, one `(tmp, out)` pair
    /// per group slot; empty until [`GpuMog::enable_morphology`].
    morph_bufs: Vec<(Buffer, Buffer)>,
    /// Global frame counter across `process_all` calls, attributing
    /// dataflow nodes to absolute frame indices.
    frames_seen: usize,
}

impl<T: DeviceReal> GpuMog<T> {
    /// Allocates device state and uploads the initial model (seeded from
    /// `first_frame`, exactly like the CPU reference).
    ///
    /// # Errors
    /// Configuration and device-memory errors.
    pub fn new(
        resolution: Resolution,
        params: MogParams,
        level: OptLevel,
        first_frame: &[u8],
        cfg: GpuConfig,
    ) -> Result<Self, PipelineError> {
        params.validate().map_err(PipelineError::Config)?;
        let pixels = resolution.pixels();
        if pixels == 0 {
            return Err(PipelineError::Config("zero-pixel resolution".into()));
        }
        if first_frame.len() != pixels {
            return Err(PipelineError::Config(format!(
                "seed frame has {} bytes, resolution {} needs {}",
                first_frame.len(),
                resolution,
                pixels
            )));
        }
        let group = level.group();
        let mut mem = DeviceMemory::with_config(&cfg);
        let model = DeviceModel::<T>::alloc(&mut mem, level.layout(), pixels, params.k)?;
        let mut frame_bufs = Vec::with_capacity(group);
        let mut fg_bufs = Vec::with_capacity(group);
        // Double buffering for overlapped levels is a scheduling concern
        // of the timing model; functionally one buffer set per group slot
        // suffices.
        for _ in 0..group {
            frame_bufs.push(mem.alloc(pixels)?);
            fg_bufs.push(mem.alloc(pixels)?);
        }
        let host = HostModel::<T>::init(pixels, params.k, &params, first_frame);
        model.upload(&mut mem, &host);
        Ok(GpuMog {
            cfg,
            level,
            params,
            prm: params.resolve(),
            resolution,
            mem,
            model,
            frame_bufs,
            fg_bufs,
            threads_per_block: THREADS_PER_BLOCK,
            launcher: None,
            profile: ProfileMode::Off,
            last_profile: None,
            sanitize: false,
            last_san: None,
            dataflow: None,
            morph_bufs: Vec::new(),
            frames_seen: 0,
        })
    }

    /// The configured optimization level.
    pub fn level(&self) -> OptLevel {
        self.level
    }

    /// The pipeline's frame resolution.
    pub fn resolution(&self) -> Resolution {
        self.resolution
    }

    /// Device bytes this pipeline's model and frame buffers occupy —
    /// what a multi-stream host must budget per stream.
    pub fn device_allocated(&self) -> usize {
        self.mem.allocated()
    }

    /// The simulated hardware configuration.
    pub fn config(&self) -> &GpuConfig {
        &self.cfg
    }

    /// Overrides the launch block size (default
    /// [`THREADS_PER_BLOCK`]). Oversized blocks can make the kernel
    /// unlaunchable — `process_all` then fails with
    /// `LaunchError::ResourcesExceeded` wrapped in
    /// [`PipelineError::Launch`], which `mogpu advise` surfaces as a
    /// structured diagnostic.
    pub fn set_threads_per_block(&mut self, tpb: u32) {
        self.threads_per_block = tpb.max(1);
        // The cached plan was validated for the old grid.
        self.launcher = None;
    }

    /// Enables or disables profiling for subsequent `process_all` calls.
    /// Off (the default) costs nothing; On makes every launch aggregate
    /// per-site counters and `process_all` assemble a [`ProfileReport`].
    pub fn set_profile_mode(&mut self, mode: ProfileMode) {
        self.profile = mode;
    }

    /// Takes the report of the most recent profiled `process_all`.
    /// Returns `None` when profiling was off or no run has completed.
    pub fn take_profile_report(&mut self) -> Option<ProfileReport> {
        self.last_profile.take()
    }

    /// Enables or disables the sanitizer ([`mogpu_sim::sancheck`]) for
    /// subsequent `process_all` calls. Off (the default) costs nothing;
    /// on, every launch runs memcheck/racecheck/synccheck/initcheck and
    /// `process_all` accumulates the findings.
    pub fn set_sanitize(&mut self, on: bool) {
        self.sanitize = on;
    }

    /// Takes the sanitizer report of the most recent sanitized
    /// `process_all`. Returns `None` when sanitizing was off or no run
    /// has completed.
    pub fn take_san_report(&mut self) -> Option<SanReport> {
        self.last_san.take()
    }

    /// Enables cross-launch dataflow recording for subsequent
    /// `process_all` calls: every host upload, kernel launch, and host
    /// download is summarized into byte-interval read/write sets and
    /// stitched into the producer→consumer graph returned by
    /// [`GpuMog::dataflow_graph`]. Capture is observational — counters,
    /// masks, and timing are bit-identical to an unrecorded run. The
    /// host-side model initialization that `new` already performed is
    /// recorded as the graph's first node, so first-frame model reads
    /// attribute to it rather than appearing unattributed.
    pub fn enable_dataflow(&mut self) {
        if self.dataflow.is_some() {
            return;
        }
        let mut rec = DataflowRecorder::new();
        rec.record_upload("host-init", None, self.model.span_set());
        self.dataflow = Some(rec);
    }

    /// The dataflow graph recorded so far, or `None` when
    /// [`GpuMog::enable_dataflow`] was never called.
    pub fn dataflow_graph(&self) -> Option<DataflowGraph> {
        self.dataflow.as_ref().map(DataflowRecorder::finish)
    }

    /// Enables the 3x3 morphological-opening post-pass (erode then
    /// dilate, the paper's foreground-validation step) on every frame's
    /// mask, launched inside this pipeline's device memory so the
    /// MoG→morphology round trip is visible to the dataflow recorder.
    /// Downloaded masks become the opened masks. Morphology counters are
    /// recorded per launch in the dataflow graph but kept out of the
    /// run's MoG kernel stats, so per-level profile metrics keep their
    /// meaning.
    ///
    /// # Errors
    /// Device out-of-memory for the per-slot scratch masks.
    pub fn enable_morphology(&mut self) -> Result<(), PipelineError> {
        if !self.morph_bufs.is_empty() {
            return Ok(());
        }
        let pixels = self.resolution.pixels();
        for _ in 0..self.fg_bufs.len() {
            let tmp = self.mem.alloc(pixels)?;
            let out = self.mem.alloc(pixels)?;
            self.morph_bufs.push((tmp, out));
        }
        Ok(())
    }

    /// The algorithm parameters.
    pub fn params(&self) -> &MogParams {
        &self.params
    }

    /// Downloads the current device model (verification hook).
    pub fn download_model(&self, seed_frame: &[u8]) -> HostModel<T> {
        let template = HostModel::<T>::init(
            self.resolution.pixels(),
            self.params.k,
            &self.params,
            seed_frame,
        );
        self.model.download(&self.mem, &template)
    }

    fn frame_pass(&self, slot: usize) -> FramePass<T> {
        FramePass {
            model: self.model,
            frame: self.frame_bufs[slot],
            fg: self.fg_bufs[slot],
            pixels: self.resolution.pixels(),
            prm: self.prm,
            resources: self
                .level
                .resources(self.threads_per_block, self.params.k, T::BYTES),
        }
    }

    /// Returns the cached launch plan, building (and validating) it on
    /// first use after construction or a block-size change.
    fn launcher(&mut self) -> Result<BatchLauncher, PipelineError> {
        if let Some(l) = self.launcher {
            return Ok(l);
        }
        let lc = LaunchConfig::cover(self.resolution.pixels(), self.threads_per_block);
        let res = self
            .level
            .resources(self.threads_per_block, self.params.k, T::BYTES);
        let l = BatchLauncher::new(&self.cfg, lc, res)?;
        self.launcher = Some(l);
        Ok(l)
    }

    /// Runs the erode+dilate opening on one slot's foreground mask,
    /// inside the pipeline's device memory (so the recorder sees the
    /// MoG→morphology bytes), recording each launch as a `morphology`
    /// node. The stats stay out of the MoG run aggregate.
    fn run_morph(
        &mut self,
        slot: usize,
        frame: usize,
        opts: LaunchOptions,
    ) -> Result<(), PipelineError> {
        let (tmp, out) = self.morph_bufs[slot];
        let lc = LaunchConfig::cover(self.resolution.pixels(), self.threads_per_block);
        for (input, output, op) in [
            (self.fg_bufs[slot], tmp, MorphOp::Erode),
            (tmp, out, MorphOp::Dilate),
        ] {
            let k = MorphKernel {
                input,
                output,
                width: self.resolution.width,
                height: self.resolution.height,
                op,
            };
            let mut report = mogpu_sim::launch_with(&mut self.mem, &self.cfg, lc, &k, opts)?;
            if let Some(rec) = self.dataflow.as_mut() {
                if let Some(access) = report.access.take() {
                    rec.record_kernel(
                        "morphology",
                        Some(frame),
                        access,
                        report.stats.clone(),
                        report.occupancy,
                    );
                }
            }
        }
        Ok(())
    }

    /// Processes a group of up to `level.group()` frames with one launch
    /// (`base` = absolute index of the group's first frame), returning
    /// the masks and the launch's report.
    fn process_group(
        &mut self,
        frames: &[&Frame<u8>],
        base: usize,
    ) -> Result<(Vec<Mask>, LaunchReport), PipelineError> {
        for (slot, frame) in frames.iter().enumerate() {
            self.mem.upload(self.frame_bufs[slot], frame.as_slice());
            if let Some(rec) = self.dataflow.as_mut() {
                let b = self.frame_bufs[slot];
                rec.record_upload(
                    "host-upload",
                    Some(base + slot),
                    IntervalSet::from_span(b.addr(), b.len() as u64),
                );
            }
        }
        let launcher = self.launcher()?;
        let opts = LaunchOptions {
            profile_sites: self.profile.is_on(),
            sanitize: self.sanitize,
            dataflow: self.dataflow.is_some(),
        };
        let mut report = match self.level {
            OptLevel::A | OptLevel::B | OptLevel::C => {
                let k = SortedKernel {
                    pass: self.frame_pass(0),
                };
                launcher.launch(&mut self.mem, &self.cfg, &k, opts)
            }
            OptLevel::D => {
                let k = ScanKernel {
                    pass: self.frame_pass(0),
                    predicated: false,
                    recompute_diff: false,
                };
                launcher.launch(&mut self.mem, &self.cfg, &k, opts)
            }
            OptLevel::E => {
                let k = ScanKernel {
                    pass: self.frame_pass(0),
                    predicated: true,
                    recompute_diff: false,
                };
                launcher.launch(&mut self.mem, &self.cfg, &k, opts)
            }
            OptLevel::F => {
                let k = ScanKernel {
                    pass: self.frame_pass(0),
                    predicated: true,
                    recompute_diff: true,
                };
                launcher.launch(&mut self.mem, &self.cfg, &k, opts)
            }
            OptLevel::Windowed { .. } => {
                let k = TiledKernel {
                    pass: self.frame_pass(0),
                    frames: self.frame_bufs[..frames.len()].to_vec(),
                    fgs: self.fg_bufs[..frames.len()].to_vec(),
                    record_stride: None,
                };
                launcher.launch(&mut self.mem, &self.cfg, &k, opts)
            }
        };
        if let Some(rec) = self.dataflow.as_mut() {
            if let Some(access) = report.access.take() {
                // A grouped (level-W) launch covers the whole chunk;
                // attribute it to the group's first frame.
                rec.record_kernel(
                    "mog-update",
                    Some(base),
                    access,
                    report.stats.clone(),
                    report.occupancy,
                );
            }
        }
        let opened = !self.morph_bufs.is_empty();
        if opened {
            for slot in 0..frames.len() {
                self.run_morph(slot, base + slot, opts)?;
            }
        }

        let mut masks = Vec::with_capacity(frames.len());
        for slot in 0..frames.len() {
            let src = if opened {
                self.morph_bufs[slot].1
            } else {
                self.fg_bufs[slot]
            };
            let bytes = self.mem.download(src);
            if let Some(rec) = self.dataflow.as_mut() {
                rec.record_download(
                    "host-download",
                    Some(base + slot),
                    IntervalSet::from_span(src.addr(), src.len() as u64),
                );
            }
            masks.push(Frame::from_vec(self.resolution, bytes).expect("mask size"));
        }
        Ok((masks, report))
    }

    /// Processes a frame sequence, returning masks plus the full
    /// performance report.
    ///
    /// # Errors
    /// Resolution mismatches, launch failures.
    pub fn process_all(&mut self, frames: &[Frame<u8>]) -> Result<RunReport, PipelineError> {
        for f in frames {
            if f.resolution() != self.resolution {
                return Err(PipelineError::Config(format!(
                    "frame resolution {} differs from pipeline resolution {}",
                    f.resolution(),
                    self.resolution
                )));
            }
        }
        let group = self.level.group();
        let mut stats = KernelStats::default();
        let mut kernel_time = 0.0f64;
        let mut per_frame_kernel_times = Vec::with_capacity(frames.len());
        let mut occupancy = None;
        let mut masks = Vec::with_capacity(frames.len());
        let mut launches: Vec<LaunchProfile> = Vec::new();
        let mut sites = SiteProfile::new();
        let mut san = self.sanitize.then(SanReport::new);
        let frame_refs: Vec<&Frame<u8>> = frames.iter().collect();
        for chunk in frame_refs.chunks(group) {
            let base = self.frames_seen;
            self.frames_seen += chunk.len();
            let (group_masks, mut report) = self.process_group(chunk, base)?;
            if let (Some(acc), Some(r)) = (san.as_mut(), report.sanitizer.take()) {
                acc.merge(&r);
            }
            stats.merge(&report.stats);
            kernel_time += report.timing.total;
            per_frame_kernel_times.extend(std::iter::repeat_n(
                report.timing.total / chunk.len() as f64,
                chunk.len(),
            ));
            occupancy = Some(report.occupancy);
            if self.profile.is_on() {
                if let Some(s) = report.sites.take() {
                    sites.merge(&s);
                }
                launches.push(LaunchProfile {
                    index: launches.len(),
                    frames: chunk.len(),
                    stats: report.stats.clone(),
                    metrics: DerivedMetrics::from_stats(&report.stats, &self.cfg),
                    occupancy: report.occupancy,
                    timing: report.timing,
                });
            }
            masks.extend(group_masks);
        }
        let occupancy = occupancy.ok_or_else(|| {
            PipelineError::Config("no frames processed; cannot report occupancy".into())
        })?;

        let pixels = self.resolution.pixels();
        let t_h2d = transfer_time(pixels, &self.cfg);
        let t_d2h = transfer_time(pixels, &self.cfg);
        let per_frame_kernel = if frames.is_empty() {
            0.0
        } else {
            kernel_time / frames.len() as f64
        };
        let schedule = pipeline_schedule(
            frames.len(),
            t_h2d,
            per_frame_kernel,
            t_d2h,
            self.level.overlap(),
            &self.cfg,
        );
        let pipeline = timing_of(&schedule);
        let metrics = DerivedMetrics::from_stats(&stats, &self.cfg);
        let telemetry = sample_schedule(
            &schedule,
            &stats,
            &occupancy,
            &self.cfg,
            &TelemetryConfig::default(),
        );
        let fusion = self
            .dataflow
            .as_ref()
            .map(|r| r.finish().fusion_candidates())
            .unwrap_or_default();
        self.last_profile = self.profile.is_on().then(|| {
            ProfileReport::assemble(
                self.level.name(),
                self.level.overlap(),
                stats.clone(),
                occupancy,
                t_h2d,
                t_d2h,
                schedule,
                launches,
                std::mem::take(&mut sites),
                &fusion,
                &self.cfg,
            )
        });
        self.last_san = san;
        Ok(RunReport {
            masks,
            frames: frames.len(),
            stats,
            occupancy,
            kernel_time_total: kernel_time,
            per_frame_kernel_times,
            h2d_per_frame: t_h2d,
            d2h_per_frame: t_d2h,
            pipeline,
            metrics,
            telemetry,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mogpu_frame::SceneBuilder;

    fn scene_frames(n: usize) -> Vec<Frame<u8>> {
        SceneBuilder::new(Resolution::TINY)
            .seed(21)
            .walkers(2)
            .build()
            .render_sequence(n)
            .0
            .into_frames()
    }

    fn run_level(level: OptLevel, frames: &[Frame<u8>]) -> (RunReport, GpuMog<f64>) {
        let mut gpu = GpuMog::<f64>::new(
            Resolution::TINY,
            MogParams::default(),
            level,
            frames[0].as_slice(),
            GpuConfig::tesla_c2075(),
        )
        .unwrap();
        let report = gpu.process_all(&frames[1..]).unwrap();
        (report, gpu)
    }

    #[test]
    fn all_levels_produce_masks() {
        let frames = scene_frames(6);
        for level in OptLevel::LADDER
            .into_iter()
            .chain([OptLevel::Windowed { group: 4 }])
        {
            let (report, _) = run_level(level, &frames);
            assert_eq!(report.masks.len(), 5, "level {level}");
            assert!(report.gpu_time_per_frame() > 0.0);
            assert!(report.occupancy.occupancy > 0.0);
        }
    }

    #[test]
    fn coalescing_improves_memory_efficiency() {
        let frames = scene_frames(4);
        let (a, _) = run_level(OptLevel::A, &frames);
        let (b, _) = run_level(OptLevel::B, &frames);
        assert!(
            b.metrics.mem_access_efficiency > 3.0 * a.metrics.mem_access_efficiency,
            "A: {:.3}, B: {:.3}",
            a.metrics.mem_access_efficiency,
            b.metrics.mem_access_efficiency
        );
        assert!(b.metrics.store_transactions < a.metrics.store_transactions / 3);
    }

    #[test]
    fn level_outputs_match_cpu_reference() {
        use mogpu_mog::SerialMog;
        let frames = scene_frames(8);
        for level in [OptLevel::B, OptLevel::D, OptLevel::E] {
            let mut cpu = SerialMog::<f64>::new(
                Resolution::TINY,
                MogParams::default(),
                level.cpu_variant(),
                frames[0].as_slice(),
            );
            let (report, _) = run_level(level, &frames);
            for (i, f) in frames[1..].iter().enumerate() {
                let cpu_mask = cpu.process(f);
                assert_eq!(cpu_mask, report.masks[i], "level {level} frame {i}");
            }
        }
    }

    #[test]
    fn windowed_matches_level_f_masks() {
        let frames = scene_frames(9);
        let (f_report, _) = run_level(OptLevel::F, &frames);
        let (w_report, _) = run_level(OptLevel::Windowed { group: 4 }, &frames);
        assert_eq!(f_report.masks, w_report.masks);
    }

    #[test]
    fn overlap_reduces_per_frame_time() {
        let frames = scene_frames(10);
        let (b, _) = run_level(OptLevel::B, &frames);
        let (c, _) = run_level(OptLevel::C, &frames);
        // Same kernel, overlapped transfers: C must be faster end to end.
        assert!(c.gpu_time_per_frame() < b.gpu_time_per_frame());
        // And roughly kernel-bound.
        assert!(c.gpu_time_per_frame() < b.gpu_time_per_frame() * 0.95);
    }

    #[test]
    fn profiled_run_yields_report_with_resolved_hotspots() {
        let frames = scene_frames(5);
        let mut gpu = GpuMog::<f64>::new(
            Resolution::TINY,
            MogParams::default(),
            OptLevel::D,
            frames[0].as_slice(),
            GpuConfig::tesla_c2075(),
        )
        .unwrap();
        // Off by default: no report.
        gpu.process_all(&frames[1..]).unwrap();
        assert!(gpu.take_profile_report().is_none());

        gpu.set_profile_mode(crate::profile::ProfileMode::On);
        let run = gpu.process_all(&frames[1..]).unwrap();
        let report = gpu
            .take_profile_report()
            .expect("profiled run must yield a report");
        assert_eq!(report.frames, 4);
        assert_eq!(report.launches.len(), 4);
        assert_eq!(report.frame_rate_history.len(), 4);
        assert!(report.fps > 0.0);
        assert_eq!(report.schedule.len(), 4);
        // Profiling must not change the profiler counters.
        assert_eq!(report.stats, run.stats);
        // The scan kernel has many instrumented sites; all must resolve
        // into the kernels module.
        let resolved: Vec<&str> = report
            .hotspots
            .iter()
            .filter_map(|h| h.source.as_deref())
            .collect();
        assert!(resolved.len() >= 3, "resolved sites: {resolved:?}");
        for src in &resolved {
            assert!(src.contains("kernels"), "unexpected site {src}");
        }
        // And the report is taken, not kept.
        assert!(gpu.take_profile_report().is_none());
    }

    #[test]
    fn profiling_does_not_change_masks() {
        let frames = scene_frames(6);
        let (plain, _) = run_level(OptLevel::F, &frames);
        let mut gpu = GpuMog::<f64>::new(
            Resolution::TINY,
            MogParams::default(),
            OptLevel::F,
            frames[0].as_slice(),
            GpuConfig::tesla_c2075(),
        )
        .unwrap();
        gpu.set_profile_mode(crate::profile::ProfileMode::On);
        let profiled = gpu.process_all(&frames[1..]).unwrap();
        assert_eq!(plain.masks, profiled.masks);
        assert_eq!(plain.stats, profiled.stats);
    }

    #[test]
    fn wrong_resolution_frame_rejected() {
        let frames = scene_frames(3);
        let mut gpu = GpuMog::<f64>::new(
            Resolution::TINY,
            MogParams::default(),
            OptLevel::F,
            frames[0].as_slice(),
            GpuConfig::tesla_c2075(),
        )
        .unwrap();
        let wrong: Frame<u8> = Frame::new(Resolution::QVGA);
        assert!(matches!(
            gpu.process_all(&[wrong]),
            Err(PipelineError::Config(_))
        ));
    }

    #[test]
    fn bad_seed_frame_rejected() {
        let r = GpuMog::<f64>::new(
            Resolution::TINY,
            MogParams::default(),
            OptLevel::F,
            &[0u8; 10],
            GpuConfig::tesla_c2075(),
        );
        assert!(matches!(r, Err(PipelineError::Config(_))));
    }

    #[test]
    fn dataflow_recording_does_not_perturb_masks_or_stats() {
        let frames = scene_frames(6);
        let (plain, _) = run_level(OptLevel::F, &frames);
        let mut gpu = GpuMog::<f64>::new(
            Resolution::TINY,
            MogParams::default(),
            OptLevel::F,
            frames[0].as_slice(),
            GpuConfig::tesla_c2075(),
        )
        .unwrap();
        gpu.enable_dataflow();
        let traced = gpu.process_all(&frames[1..]).unwrap();
        assert_eq!(plain.masks, traced.masks);
        assert_eq!(plain.stats, traced.stats);
        let graph = gpu.dataflow_graph().expect("graph after traced run");
        assert!(graph.nodes.iter().any(|n| n.name == "mog-update"));
    }

    #[test]
    fn dataflow_graph_conserves_bytes_and_surfaces_the_fusion_pair() {
        let frames = scene_frames(6);
        let mut gpu = GpuMog::<f64>::new(
            Resolution::TINY,
            MogParams::default(),
            OptLevel::F,
            frames[0].as_slice(),
            GpuConfig::tesla_c2075(),
        )
        .unwrap();
        gpu.enable_dataflow();
        gpu.enable_morphology().unwrap();
        gpu.process_all(&frames[1..]).unwrap();
        let graph = gpu.dataflow_graph().expect("graph");

        // Byte conservation, integer-exact: everything a node stores is
        // either consumed downstream, dead, or live at exit.
        for node in &graph.nodes {
            assert_eq!(
                node.stored_bytes,
                node.consumed_bytes + node.dead_store_bytes + node.live_at_exit_bytes,
                "conservation violated at {}",
                node.name
            );
        }
        // No edge can carry more than its producer stored.
        for e in &graph.edges {
            assert!(e.bytes <= graph.nodes[e.producer].stored_bytes);
        }
        // Exactly one aggregated candidate: mog-update feeding morphology.
        let cands = graph.fusion_candidates();
        assert_eq!(cands.len(), 1, "candidates: {cands:?}");
        assert_eq!(cands[0].producer, "mog-update");
        assert_eq!(cands[0].consumer, "morphology");
        assert!(cands[0].edge_bytes > 0);
        assert_eq!(cands[0].pairs, 5);
    }

    #[test]
    fn morphology_opens_masks_without_touching_kernel_stats() {
        let frames = scene_frames(6);
        let (plain, _) = run_level(OptLevel::F, &frames);
        let mut gpu = GpuMog::<f64>::new(
            Resolution::TINY,
            MogParams::default(),
            OptLevel::F,
            frames[0].as_slice(),
            GpuConfig::tesla_c2075(),
        )
        .unwrap();
        gpu.enable_morphology().unwrap();
        let opened = gpu.process_all(&frames[1..]).unwrap();
        // Morph launches run off to the side; the MoG counters and
        // timing inputs are untouched.
        assert_eq!(plain.stats, opened.stats);
        assert_eq!(plain.masks.len(), opened.masks.len());
        // An open (erode then dilate) never grows the foreground.
        for (p, o) in plain.masks.iter().zip(&opened.masks) {
            let fg_plain = p.as_slice().iter().filter(|&&v| v != 0).count();
            let fg_open = o.as_slice().iter().filter(|&&v| v != 0).count();
            assert!(fg_open <= fg_plain, "open grew the mask");
        }
    }

    #[test]
    fn adaptive_dataflow_graph_is_conservation_clean() {
        let frames = scene_frames(5);
        let mut gpu = AdaptiveGpuMog::<f64>::new(
            Resolution::TINY,
            MogParams::default(),
            frames[0].as_slice(),
            GpuConfig::tesla_c2075(),
        )
        .unwrap();
        gpu.enable_dataflow();
        gpu.process_all(&frames[1..]).unwrap();
        let graph = gpu.dataflow_graph().expect("graph");
        assert!(graph.nodes.iter().any(|n| n.name == "adaptive-update"));
        for node in &graph.nodes {
            assert_eq!(
                node.stored_bytes,
                node.consumed_bytes + node.dead_store_bytes + node.live_at_exit_bytes,
                "conservation violated at {}",
                node.name
            );
        }
    }

    #[test]
    fn f32_pipeline_runs() {
        let frames = scene_frames(5);
        let mut gpu = GpuMog::<f32>::new(
            Resolution::TINY,
            MogParams::default(),
            OptLevel::F,
            frames[0].as_slice(),
            GpuConfig::tesla_c2075(),
        )
        .unwrap();
        let report = gpu.process_all(&frames[1..]).unwrap();
        assert_eq!(report.masks.len(), 4);
        // Half-width parameters => fewer transactions than f64.
        assert!(report.stats.total_tx() > 0);
    }

    #[test]
    fn empty_sequence_is_an_error() {
        let frames = scene_frames(1);
        let mut gpu = GpuMog::<f64>::new(
            Resolution::TINY,
            MogParams::default(),
            OptLevel::F,
            frames[0].as_slice(),
            GpuConfig::tesla_c2075(),
        )
        .unwrap();
        assert!(gpu.process_all(&[]).is_err());
    }
}

/// Host pipeline for the adaptive component-count comparator of the
/// paper's Section II (related work \[18\]). Always SoA + double-buffered;
/// `params.k` acts as `k_max`.
#[derive(Debug)]
pub struct AdaptiveGpuMog<T: DeviceReal> {
    cfg: GpuConfig,
    prm: ResolvedParams<T>,
    resolution: Resolution,
    mem: DeviceMemory,
    model: DeviceModel<T>,
    active: Buffer,
    frame_buf: Buffer,
    fg_buf: Buffer,
    profile: ProfileMode,
    last_profile: Option<ProfileReport>,
    sanitize: bool,
    last_san: Option<SanReport>,
    dataflow: Option<DataflowRecorder>,
    frames_seen: usize,
}

impl<T: DeviceReal> AdaptiveGpuMog<T> {
    /// Allocates device state; every pixel starts with one component
    /// seeded from `first_frame`.
    ///
    /// # Errors
    /// Configuration and device-memory errors.
    pub fn new(
        resolution: Resolution,
        params: MogParams,
        first_frame: &[u8],
        cfg: GpuConfig,
    ) -> Result<Self, PipelineError> {
        params.validate().map_err(PipelineError::Config)?;
        let pixels = resolution.pixels();
        if first_frame.len() != pixels {
            return Err(PipelineError::Config("seed frame size mismatch".into()));
        }
        let mut mem = DeviceMemory::with_config(&cfg);
        let model =
            DeviceModel::<T>::alloc(&mut mem, crate::layout::Layout::Soa, pixels, params.k)?;
        let active = mem.alloc(pixels)?;
        let frame_buf = mem.alloc(pixels)?;
        let fg_buf = mem.alloc(pixels)?;
        // Seed: one active component per pixel, parameters through the
        // SoA layout.
        let host =
            mogpu_mog::adaptive::AdaptiveModel::<T>::init(pixels, params.k, &params, first_frame);
        let k = params.k;
        for p in 0..pixels {
            mem.write_u8(active, p, 1);
            for ki in 0..k {
                let idx = p * k + ki;
                model.host_write_params(&mut mem, p, ki, host.w[idx], host.m[idx], host.sd[idx]);
            }
        }
        Ok(AdaptiveGpuMog {
            cfg,
            prm: params.resolve(),
            resolution,
            mem,
            model,
            active,
            frame_buf,
            fg_buf,
            profile: ProfileMode::Off,
            last_profile: None,
            sanitize: false,
            last_san: None,
            dataflow: None,
            frames_seen: 0,
        })
    }

    /// Enables or disables profiling for subsequent `process_all` calls.
    pub fn set_profile_mode(&mut self, mode: ProfileMode) {
        self.profile = mode;
    }

    /// Enables cross-launch dataflow recording, mirroring
    /// [`GpuMog::enable_dataflow`]: the seeded model (and per-pixel
    /// active counts) become the graph's host-init node.
    pub fn enable_dataflow(&mut self) {
        if self.dataflow.is_some() {
            return;
        }
        let mut init = self.model.span_set();
        init.insert(
            self.active.addr(),
            self.active.addr() + self.active.len() as u64,
        );
        let mut rec = DataflowRecorder::new();
        rec.record_upload("host-init", None, init);
        self.dataflow = Some(rec);
    }

    /// The dataflow graph recorded so far, or `None` when recording is
    /// off.
    pub fn dataflow_graph(&self) -> Option<DataflowGraph> {
        self.dataflow.as_ref().map(DataflowRecorder::finish)
    }

    /// Takes the report of the most recent profiled `process_all`.
    pub fn take_profile_report(&mut self) -> Option<ProfileReport> {
        self.last_profile.take()
    }

    /// Enables or disables the sanitizer for subsequent `process_all`
    /// calls.
    pub fn set_sanitize(&mut self, on: bool) {
        self.sanitize = on;
    }

    /// Takes the sanitizer report of the most recent sanitized
    /// `process_all`.
    pub fn take_san_report(&mut self) -> Option<SanReport> {
        self.last_san.take()
    }

    /// Mean active component count currently on the device.
    pub fn mean_active(&self) -> f64 {
        let pixels = self.resolution.pixels();
        let mut sum = 0u64;
        for p in 0..pixels {
            sum += self.mem.read_u8(self.active, p) as u64;
        }
        sum as f64 / pixels as f64
    }

    /// Processes a frame sequence (one launch per frame), returning the
    /// run report.
    ///
    /// # Errors
    /// Resolution mismatches and launch failures.
    pub fn process_all(&mut self, frames: &[Frame<u8>]) -> Result<RunReport, PipelineError> {
        let pixels = self.resolution.pixels();
        let mut stats = KernelStats::default();
        let mut kernel_time = 0.0;
        let mut per_frame_kernel_times = Vec::with_capacity(frames.len());
        let mut occupancy = None;
        let mut masks = Vec::with_capacity(frames.len());
        let mut launches: Vec<LaunchProfile> = Vec::new();
        let mut sites = SiteProfile::new();
        let mut san = self.sanitize.then(SanReport::new);
        let opts = LaunchOptions {
            profile_sites: self.profile.is_on(),
            sanitize: self.sanitize,
            dataflow: self.dataflow.is_some(),
        };
        let resources = mogpu_sim::KernelResources {
            regs_per_thread: 33,
            shared_bytes_per_block: 0,
            local_f64_slots: 0,
        };
        // One grid for the whole sequence: validate and derive occupancy
        // once, then launch per frame.
        let launcher = BatchLauncher::new(
            &self.cfg,
            LaunchConfig::cover(pixels, THREADS_PER_BLOCK),
            resources,
        )?;
        for frame in frames {
            if frame.resolution() != self.resolution {
                return Err(PipelineError::Config("frame resolution mismatch".into()));
            }
            let fi = self.frames_seen;
            self.frames_seen += 1;
            self.mem.upload(self.frame_buf, frame.as_slice());
            if let Some(rec) = self.dataflow.as_mut() {
                rec.record_upload(
                    "host-upload",
                    Some(fi),
                    IntervalSet::from_span(self.frame_buf.addr(), self.frame_buf.len() as u64),
                );
            }
            let kernel = crate::kernels::AdaptiveKernel {
                pass: FramePass {
                    model: self.model,
                    frame: self.frame_buf,
                    fg: self.fg_buf,
                    pixels,
                    prm: self.prm,
                    resources,
                },
                active: self.active,
            };
            let mut report = launcher.launch(&mut self.mem, &self.cfg, &kernel, opts);
            if let (Some(acc), Some(r)) = (san.as_mut(), report.sanitizer.take()) {
                acc.merge(&r);
            }
            if let Some(rec) = self.dataflow.as_mut() {
                if let Some(access) = report.access.take() {
                    rec.record_kernel(
                        "adaptive-update",
                        Some(fi),
                        access,
                        report.stats.clone(),
                        report.occupancy,
                    );
                }
            }
            stats.merge(&report.stats);
            kernel_time += report.timing.total;
            per_frame_kernel_times.push(report.timing.total);
            occupancy = Some(report.occupancy);
            if self.profile.is_on() {
                if let Some(s) = report.sites.take() {
                    sites.merge(&s);
                }
                launches.push(LaunchProfile {
                    index: launches.len(),
                    frames: 1,
                    stats: report.stats.clone(),
                    metrics: DerivedMetrics::from_stats(&report.stats, &self.cfg),
                    occupancy: report.occupancy,
                    timing: report.timing,
                });
            }
            if let Some(rec) = self.dataflow.as_mut() {
                rec.record_download(
                    "host-download",
                    Some(fi),
                    IntervalSet::from_span(self.fg_buf.addr(), self.fg_buf.len() as u64),
                );
            }
            masks.push(
                Frame::from_vec(self.resolution, self.mem.download(self.fg_buf))
                    .expect("mask size"),
            );
        }
        let occupancy =
            occupancy.ok_or_else(|| PipelineError::Config("no frames processed".into()))?;
        let t_dir = transfer_time(pixels, &self.cfg);
        let per_frame_kernel = if frames.is_empty() {
            0.0
        } else {
            kernel_time / frames.len() as f64
        };
        let schedule = pipeline_schedule(
            frames.len(),
            t_dir,
            per_frame_kernel,
            t_dir,
            mogpu_sim::dma::OverlapMode::DoubleBuffered,
            &self.cfg,
        );
        let pipeline = timing_of(&schedule);
        let metrics = DerivedMetrics::from_stats(&stats, &self.cfg);
        let telemetry = sample_schedule(
            &schedule,
            &stats,
            &occupancy,
            &self.cfg,
            &TelemetryConfig::default(),
        );
        let fusion = self
            .dataflow
            .as_ref()
            .map(|r| r.finish().fusion_candidates())
            .unwrap_or_default();
        self.last_profile = self.profile.is_on().then(|| {
            ProfileReport::assemble(
                "adaptive".to_string(),
                mogpu_sim::dma::OverlapMode::DoubleBuffered,
                stats.clone(),
                occupancy,
                t_dir,
                t_dir,
                schedule,
                launches,
                std::mem::take(&mut sites),
                &fusion,
                &self.cfg,
            )
        });
        self.last_san = san;
        Ok(RunReport {
            masks,
            frames: frames.len(),
            stats,
            occupancy,
            kernel_time_total: kernel_time,
            per_frame_kernel_times,
            h2d_per_frame: t_dir,
            d2h_per_frame: t_dir,
            pipeline,
            metrics,
            telemetry,
        })
    }
}

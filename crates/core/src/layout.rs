//! Device-side Gaussian parameter layouts: the coalescing optimization of
//! Section IV-B (paper Fig. 4).
//!
//! * [`Layout::Aos`] — "array of structures": pixel-major, parameters of
//!   one pixel's components adjacent in memory. Natural translation of the
//!   CPU data structure; catastrophic on the GPU because 32 threads
//!   reading the same parameter of 32 consecutive pixels stride 72 B
//!   (3 components x 3 f64 parameters) through DRAM.
//! * [`Layout::Soa`] — "structure of arrays": each parameter of each
//!   component stored in its own contiguous plane indexed by pixel, so a
//!   warp's simultaneous accesses land in consecutive addresses — the
//!   coalesced layout of optimization level B.

use crate::device::DeviceReal;
use mogpu_mog::HostModel;
use mogpu_sim::{Buffer, DeviceMemory, MemoryError, ThreadCtx};

/// Gaussian parameter memory layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Layout {
    /// Pixel-major interleaved parameters (non-coalesced; level A).
    Aos,
    /// Parameter planes indexed by pixel (coalesced; levels B+).
    Soa,
}

/// The Gaussian mixture model resident in device memory.
///
/// Index convention (`pixel` in `0..pixels`, `ki` in `0..k`):
/// * AoS: element `(pixel*k + ki)*3 + param` of one buffer, `param` being
///   0 = weight, 1 = mean, 2 = sd;
/// * SoA: element `ki*pixels + pixel` of the per-parameter buffer.
#[derive(Debug, Clone, Copy)]
pub struct DeviceModel<T: DeviceReal> {
    layout: Layout,
    k: usize,
    pixels: usize,
    /// AoS: the single interleaved buffer; SoA: the weight plane.
    buf_w: Buffer,
    /// SoA: the mean plane (aliases `buf_w` under AoS).
    buf_m: Buffer,
    /// SoA: the sd plane (aliases `buf_w` under AoS).
    buf_sd: Buffer,
    _marker: std::marker::PhantomData<T>,
}

impl<T: DeviceReal> DeviceModel<T> {
    /// Allocates device storage for `pixels * k` components.
    ///
    /// # Errors
    /// Propagates device out-of-memory.
    pub fn alloc(
        mem: &mut DeviceMemory,
        layout: Layout,
        pixels: usize,
        k: usize,
    ) -> Result<Self, MemoryError> {
        let n = pixels * k;
        let (buf_w, buf_m, buf_sd) = match layout {
            Layout::Aos => {
                let b = mem.alloc(n * 3 * T::BYTES)?;
                (b, b, b)
            }
            Layout::Soa => (
                mem.alloc(n * T::BYTES)?,
                mem.alloc(n * T::BYTES)?,
                mem.alloc(n * T::BYTES)?,
            ),
        };
        Ok(DeviceModel {
            layout,
            k,
            pixels,
            buf_w,
            buf_m,
            buf_sd,
            _marker: std::marker::PhantomData,
        })
    }

    /// The layout in use.
    pub fn layout(&self) -> Layout {
        self.layout
    }

    /// Components per pixel.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Pixels covered.
    pub fn pixels(&self) -> usize {
        self.pixels
    }

    /// Total device bytes held by the model.
    pub fn bytes(&self) -> usize {
        self.pixels * self.k * 3 * T::BYTES
    }

    /// Byte intervals of the model's device buffers — the write set a
    /// dataflow recorder attributes to host-side model initialization.
    /// Under AoS the three handles alias one buffer; the set dedupes.
    pub fn span_set(&self) -> mogpu_sim::IntervalSet {
        let mut s = mogpu_sim::IntervalSet::new();
        for b in [self.buf_w, self.buf_m, self.buf_sd] {
            s.insert(b.addr(), b.addr() + b.len() as u64);
        }
        s
    }

    #[inline]
    fn index(&self, pixel: usize, ki: usize, param: usize) -> (Buffer, usize) {
        debug_assert!(pixel < self.pixels && ki < self.k && param < 3);
        match self.layout {
            Layout::Aos => (self.buf_w, (pixel * self.k + ki) * 3 + param),
            Layout::Soa => {
                let buf = match param {
                    0 => self.buf_w,
                    1 => self.buf_m,
                    _ => self.buf_sd,
                };
                (buf, ki * self.pixels + pixel)
            }
        }
    }

    // ---- kernel-side access (traced) ----

    /// Loads a component weight.
    #[track_caller]
    #[inline]
    pub fn ld_w(&self, ctx: &mut ThreadCtx<'_>, pixel: usize, ki: usize) -> T {
        let (b, i) = self.index(pixel, ki, 0);
        T::ld(ctx, b, i)
    }

    /// Loads a component mean.
    #[track_caller]
    #[inline]
    pub fn ld_m(&self, ctx: &mut ThreadCtx<'_>, pixel: usize, ki: usize) -> T {
        let (b, i) = self.index(pixel, ki, 1);
        T::ld(ctx, b, i)
    }

    /// Loads a component standard deviation.
    #[track_caller]
    #[inline]
    pub fn ld_sd(&self, ctx: &mut ThreadCtx<'_>, pixel: usize, ki: usize) -> T {
        let (b, i) = self.index(pixel, ki, 2);
        T::ld(ctx, b, i)
    }

    /// Stores a component weight.
    #[track_caller]
    #[inline]
    pub fn st_w(&self, ctx: &mut ThreadCtx<'_>, pixel: usize, ki: usize, v: T) {
        let (b, i) = self.index(pixel, ki, 0);
        T::st(ctx, b, i, v);
    }

    /// Stores a component mean.
    #[track_caller]
    #[inline]
    pub fn st_m(&self, ctx: &mut ThreadCtx<'_>, pixel: usize, ki: usize, v: T) {
        let (b, i) = self.index(pixel, ki, 1);
        T::st(ctx, b, i, v);
    }

    /// Stores a component standard deviation.
    #[track_caller]
    #[inline]
    pub fn st_sd(&self, ctx: &mut ThreadCtx<'_>, pixel: usize, ki: usize, v: T) {
        let (b, i) = self.index(pixel, ki, 2);
        T::st(ctx, b, i, v);
    }

    // ---- host-side transfer (untimed; model parameters live on the
    // device for the whole run, exactly as the paper arranges) ----

    /// Uploads a host model into device memory.
    ///
    /// # Panics
    /// Panics if the host model's shape differs.
    pub fn upload(&self, mem: &mut DeviceMemory, host: &HostModel<T>) {
        assert_eq!(host.pixels(), self.pixels, "pixel count mismatch");
        assert_eq!(host.k(), self.k, "component count mismatch");
        for pixel in 0..self.pixels {
            for ki in 0..self.k {
                let (w, m, sd) = host.pixel(pixel);
                self.host_write(mem, pixel, ki, 0, w[ki]);
                self.host_write(mem, pixel, ki, 1, m[ki]);
                self.host_write(mem, pixel, ki, 2, sd[ki]);
            }
        }
    }

    /// Downloads the device model into a host model (for verification).
    pub fn download(&self, mem: &DeviceMemory, template: &HostModel<T>) -> HostModel<T> {
        assert_eq!(template.pixels(), self.pixels, "pixel count mismatch");
        let mut host = template.clone();
        for pixel in 0..self.pixels {
            for ki in 0..self.k {
                let w = self.host_read(mem, pixel, ki, 0);
                let m = self.host_read(mem, pixel, ki, 1);
                let sd = self.host_read(mem, pixel, ki, 2);
                let (hw, hm, hsd) = host.pixel_mut(pixel);
                hw[ki] = w;
                hm[ki] = m;
                hsd[ki] = sd;
            }
        }
        host
    }

    /// Host-side write of all three parameters of one component (used by
    /// pipelines that seed without a full `HostModel`).
    pub fn host_write_params(
        &self,
        mem: &mut DeviceMemory,
        pixel: usize,
        ki: usize,
        w: T,
        m: T,
        sd: T,
    ) {
        self.host_write(mem, pixel, ki, 0, w);
        self.host_write(mem, pixel, ki, 1, m);
        self.host_write(mem, pixel, ki, 2, sd);
    }

    fn host_write(&self, mem: &mut DeviceMemory, pixel: usize, ki: usize, param: usize, v: T) {
        let (b, i) = self.index(pixel, ki, param);
        if T::BYTES == 8 {
            mem.write_f64(b, i, v.to_f64());
        } else {
            mem.write_f32(b, i, v.to_f64() as f32);
        }
    }

    fn host_read(&self, mem: &DeviceMemory, pixel: usize, ki: usize, param: usize) -> T {
        let (b, i) = self.index(pixel, ki, param);
        if T::BYTES == 8 {
            T::from_f64(mem.read_f64(b, i))
        } else {
            T::from_f64(mem.read_f32(b, i) as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mogpu_mog::MogParams;

    fn host_model(pixels: usize, k: usize) -> HostModel<f64> {
        let frame: Vec<u8> = (0..pixels).map(|i| (i * 13 % 251) as u8).collect();
        HostModel::init(pixels, k, &MogParams::new(k), &frame)
    }

    #[test]
    fn upload_download_round_trip_soa() {
        let mut mem = DeviceMemory::new(1 << 22);
        let host = host_model(100, 3);
        let dev: DeviceModel<f64> = DeviceModel::alloc(&mut mem, Layout::Soa, 100, 3).unwrap();
        dev.upload(&mut mem, &host);
        let back = dev.download(&mem, &host);
        assert_eq!(host, back);
    }

    #[test]
    fn upload_download_round_trip_aos() {
        let mut mem = DeviceMemory::new(1 << 22);
        let host = host_model(64, 5);
        let dev: DeviceModel<f64> = DeviceModel::alloc(&mut mem, Layout::Aos, 64, 5).unwrap();
        dev.upload(&mut mem, &host);
        let back = dev.download(&mem, &host);
        assert_eq!(host, back);
    }

    #[test]
    fn f32_round_trip() {
        let mut mem = DeviceMemory::new(1 << 22);
        let frame: Vec<u8> = (0..50).map(|i| i as u8).collect();
        let host: HostModel<f32> = HostModel::init(50, 3, &MogParams::default(), &frame);
        let dev: DeviceModel<f32> = DeviceModel::alloc(&mut mem, Layout::Soa, 50, 3).unwrap();
        dev.upload(&mut mem, &host);
        assert_eq!(dev.download(&mem, &host), host);
    }

    #[test]
    fn aos_uses_one_third_the_allocations() {
        let mut mem_aos = DeviceMemory::new(1 << 22);
        let a: DeviceModel<f64> = DeviceModel::alloc(&mut mem_aos, Layout::Aos, 128, 3).unwrap();
        let mut mem_soa = DeviceMemory::new(1 << 22);
        let s: DeviceModel<f64> = DeviceModel::alloc(&mut mem_soa, Layout::Soa, 128, 3).unwrap();
        assert_eq!(a.bytes(), s.bytes());
        assert_eq!(a.bytes(), 128 * 3 * 3 * 8);
    }

    #[test]
    fn oom_is_reported() {
        let mut mem = DeviceMemory::new(1024);
        let r: Result<DeviceModel<f64>, _> =
            DeviceModel::alloc(&mut mem, Layout::Soa, 1_000_000, 3);
        assert!(r.is_err());
    }

    #[test]
    fn soa_addresses_are_pixel_contiguous() {
        // The coalescing premise: for a fixed component/parameter,
        // consecutive pixels map to consecutive element indices.
        let mut mem = DeviceMemory::new(1 << 22);
        let dev: DeviceModel<f64> = DeviceModel::alloc(&mut mem, Layout::Soa, 100, 3).unwrap();
        let (b0, i0) = dev.index(10, 1, 1);
        let (b1, i1) = dev.index(11, 1, 1);
        assert_eq!(b0, b1);
        assert_eq!(i1, i0 + 1);
    }

    #[test]
    fn aos_addresses_stride_by_component_record() {
        let mut mem = DeviceMemory::new(1 << 22);
        let dev: DeviceModel<f64> = DeviceModel::alloc(&mut mem, Layout::Aos, 100, 3).unwrap();
        let (_, i0) = dev.index(10, 0, 0);
        let (_, i1) = dev.index(11, 0, 0);
        assert_eq!(i1 - i0, 9, "AoS stride must be k*3 elements");
    }
}

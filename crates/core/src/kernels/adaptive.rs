//! GPU kernel for the **adaptive component-count** MoG of the paper's
//! Section II (\[18\]) — implemented to *validate the paper's argument
//! against it*: in lockstep SIMT execution every warp pays for its most
//! complex pixel, so the large average-work reduction adaptivity buys on
//! a CPU mostly evaporates on the GPU (`exp_adaptive` quantifies this).
//!
//! The per-pixel logic mirrors `mogpu_mog::adaptive::step_pixel_adaptive`
//! exactly; the component loop bound is the pixel's own `active` count, so
//! lanes genuinely execute different trip counts — the slot model then
//! charges the warp for the maximum, exactly as Fermi would.

use super::FramePass;
use crate::device::DeviceReal;
use mogpu_mog::adaptive::PRUNE_WEIGHT;
use mogpu_mog::update::MAX_K;
use mogpu_sim::{Buffer, Kernel, KernelResources, ThreadCtx};

/// Adaptive-K MoG kernel (related-work comparator).
#[derive(Debug, Clone, Copy)]
pub struct AdaptiveKernel<T: DeviceReal> {
    /// Frame I/O and parameters (`pass.prm.k` is `k_max`).
    pub pass: FramePass<T>,
    /// Per-pixel active component counts (u8, `pixels` entries).
    pub active: Buffer,
}

impl<T: DeviceReal> Kernel for AdaptiveKernel<T> {
    fn resources(&self) -> KernelResources {
        self.pass.resources
    }

    fn run(&self, ctx: &mut ThreadCtx<'_>) {
        let pass = &self.pass;
        let i = ctx.global_thread_id();
        ctx.int_op(2);
        if !ctx.branch(i < pass.pixels) {
            return;
        }
        let prm = &pass.prm;
        let k_max = prm.k;
        let p = T::from_u8(ctx.ld_u8(pass.frame, i));
        ctx.int_op(1);
        let mut active = ctx.ld_u8(self.active, i) as usize;
        ctx.int_op(1);

        let mut w = [T::zero(); MAX_K];
        let mut m = [T::zero(); MAX_K];
        let mut sd = [T::zero(); MAX_K];
        let mut diff = [T::zero(); MAX_K];
        let mut matched = false;
        // Data-dependent trip count: this is where warps diverge.
        for ki in 0..active {
            ctx.int_op(1);
            ctx.branch(ki < active); // divergent loop branch across lanes
            w[ki] = pass.model.ld_w(ctx, i, ki);
            m[ki] = pass.model.ld_m(ctx, i, ki);
            sd[ki] = pass.model.ld_sd(ctx, i, ki);
            let d = (m[ki] - p).abs();
            T::flop(ctx, 2);
            diff[ki] = d;
            T::flop(ctx, 1);
            if ctx.branch(d < prm.match_threshold) {
                w[ki] = prm.alpha * w[ki] + prm.one_minus_alpha;
                T::flop(ctx, 2);
                let tmp = prm.one_minus_alpha / w[ki];
                T::flop(ctx, 4);
                m[ki] = m[ki] + tmp * (p - m[ki]);
                T::flop(ctx, 3);
                let dm = p - m[ki];
                T::flop(ctx, 1);
                let var = sd[ki] * sd[ki] + tmp * (dm * dm - sd[ki] * sd[ki]);
                T::flop(ctx, 5);
                sd[ki] = var.max(prm.min_var).sqrt();
                T::flop(ctx, 5);
                matched = true;
            } else {
                w[ki] = prm.alpha * w[ki];
                T::flop(ctx, 1);
            }
        }

        if ctx.branch(!matched) {
            if ctx.branch(active < k_max) {
                // Grow.
                w[active] = prm.initial_weight;
                m[active] = p;
                sd[active] = prm.initial_sd;
                diff[active] = T::zero();
                active += 1;
                ctx.int_op(1);
            } else {
                // Replace the weakest.
                let mut weakest = 0usize;
                for ki in 1..active {
                    T::flop(ctx, 1);
                    ctx.int_op(1);
                    if w[ki] < w[weakest] {
                        weakest = ki;
                    }
                }
                w[weakest] = prm.initial_weight;
                m[weakest] = p;
                sd[weakest] = prm.initial_sd;
                diff[weakest] = T::zero();
            }
        }

        // Prune (mirrors the CPU: backwards swap-removal, keep >= 1).
        let prune = T::from_f64(PRUNE_WEIGHT);
        let mut ki = active;
        while ki > 0 {
            ki -= 1;
            ctx.int_op(1);
            T::flop(ctx, 1);
            if ctx.branch(active > 1 && w[ki] < prune) {
                active -= 1;
                w.swap(ki, active);
                m.swap(ki, active);
                sd.swap(ki, active);
                diff.swap(ki, active);
                ctx.int_op(4);
            }
        }

        // Store the active prefix and the new count. (Inactive slots keep
        // stale device values; the CPU reference's inactive slots differ —
        // only the active prefix is semantically meaningful.)
        for ki in 0..active {
            ctx.int_op(1);
            ctx.branch(ki < active); // divergent loop branch
            pass.model.st_w(ctx, i, ki, w[ki]);
            pass.model.st_m(ctx, i, ki, m[ki]);
            pass.model.st_sd(ctx, i, ki, sd[ki]);
        }
        ctx.st_u8(self.active, i, active as u8);

        // Classify over the active components (no-sort decision).
        let mut fgv = 1u8;
        for ki in 0..active {
            ctx.int_op(1);
            ctx.branch(ki < active); // divergent loop branch
            let bg = w[ki] >= prm.bg_weight && diff[ki] / sd[ki] < prm.bg_sigma_ratio;
            T::flop(ctx, 6);
            if bg {
                fgv = 0;
            }
        }
        ctx.st_u8(pass.fg, i, if fgv == 1 { 255 } else { 0 });
    }
}

//! GPU 3x3 binary morphology — the foreground-validation post-pass of the
//! paper's MoG reference \[20\], as a device kernel.
//!
//! Unlike the MoG kernels (one thread = one pixel, purely element-wise),
//! morphology reads a 2-D neighbourhood: each thread loads nine bytes
//! from three rows. Each of the nine warp-level loads coalesces into one
//! or two 128-byte segments, but consecutive loads *re-touch* the same
//! rows — traffic a real GPU's cache hierarchy absorbs. The unit tests
//! quantify both behaviours (cache off: ~10 transactions/warp; L2 model
//! on: rows collapse), making this kernel the simulator's spatial-stencil
//! counterpoint to MoG's element-wise streams.

use mogpu_sim::{Buffer, Kernel, KernelResources, ThreadCtx};

/// Which 3x3 operation the kernel applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MorphOp {
    /// Survive only if all 9 neighbours are foreground.
    Erode,
    /// Become foreground if any of the 9 neighbours is.
    Dilate,
}

/// 3x3 morphology kernel over a binary mask.
#[derive(Debug, Clone, Copy)]
pub struct MorphKernel {
    /// Input mask (u8, `width * height`).
    pub input: Buffer,
    /// Output mask.
    pub output: Buffer,
    /// Frame width in pixels.
    pub width: usize,
    /// Frame height in pixels.
    pub height: usize,
    /// Operation.
    pub op: MorphOp,
}

impl Kernel for MorphKernel {
    fn resources(&self) -> KernelResources {
        // A handful of address registers and the accumulator; measured
        // from comparable CUDA stencils.
        KernelResources {
            regs_per_thread: 14,
            shared_bytes_per_block: 0,
            local_f64_slots: 0,
        }
    }

    fn run(&self, ctx: &mut ThreadCtx<'_>) {
        let i = ctx.global_thread_id();
        ctx.int_op(2);
        let n = self.width * self.height;
        if !ctx.branch(i < n) {
            return;
        }
        let x = (i % self.width) as isize;
        let y = (i / self.width) as isize;
        ctx.int_op(2);
        let (w, h) = (self.width as isize, self.height as isize);

        // Predicated accumulation over the window: out-of-bounds pixels
        // count as background (erode fails, dilate ignores).
        let mut all = true;
        let mut any = false;
        for dy in -1..=1isize {
            for dx in -1..=1isize {
                ctx.int_op(2);
                let (nx, ny) = (x + dx, y + dy);
                let inside = nx >= 0 && ny >= 0 && nx < w && ny < h;
                ctx.int_op(1);
                if ctx.branch(inside) {
                    let v = ctx.ld_u8(self.input, (ny * w + nx) as usize);
                    ctx.int_op(2);
                    all &= v != 0;
                    any |= v != 0;
                } else {
                    all = false;
                }
            }
        }
        let fg = match self.op {
            MorphOp::Erode => all,
            MorphOp::Dilate => any,
        };
        ctx.st_u8(self.output, i, if fg { 255 } else { 0 });
    }
}

/// Runs one morphology pass on the device, returning the output mask
/// bytes and the launch report.
///
/// # Errors
/// Device allocation / launch failures.
pub fn gpu_morph(
    mask: &mogpu_frame::Mask,
    op: MorphOp,
    cfg: &mogpu_sim::GpuConfig,
) -> Result<(mogpu_frame::Mask, mogpu_sim::kernel::LaunchReport), mogpu_sim::LaunchError> {
    gpu_morph_with(mask, op, cfg, mogpu_sim::LaunchOptions::default())
}

/// [`gpu_morph`] with explicit [`mogpu_sim::LaunchOptions`] — used by
/// `mogpu check` to run the stencil kernel under the sanitizer.
///
/// # Errors
/// Device allocation / launch failures.
pub fn gpu_morph_with(
    mask: &mogpu_frame::Mask,
    op: MorphOp,
    cfg: &mogpu_sim::GpuConfig,
    opts: mogpu_sim::LaunchOptions,
) -> Result<(mogpu_frame::Mask, mogpu_sim::kernel::LaunchReport), mogpu_sim::LaunchError> {
    let res = mask.resolution();
    let n = res.pixels();
    let mut mem = mogpu_sim::DeviceMemory::with_config(cfg);
    let input = mem.alloc(n).expect("device capacity");
    let output = mem.alloc(n).expect("device capacity");
    mem.upload(input, mask.as_slice());
    let kernel = MorphKernel {
        input,
        output,
        width: res.width,
        height: res.height,
        op,
    };
    let report = mogpu_sim::launch_with(
        &mut mem,
        cfg,
        mogpu_sim::LaunchConfig::cover(n, crate::pipeline::THREADS_PER_BLOCK),
        &kernel,
        opts,
    )?;
    let out = mogpu_frame::Mask::from_vec(res, mem.download(output)).expect("mask size");
    Ok((out, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mogpu_frame::{dilate3, erode3, Mask, Resolution, SceneBuilder};
    use mogpu_sim::GpuConfig;

    fn test_mask() -> Mask {
        let scene = SceneBuilder::new(Resolution::TINY)
            .seed(31)
            .walkers(3)
            .build();
        let (_, mask) = scene.render(5);
        mask
    }

    #[test]
    fn gpu_erode_matches_cpu() {
        let m = test_mask();
        let (gpu, _) = gpu_morph(&m, MorphOp::Erode, &GpuConfig::tesla_c2075()).unwrap();
        assert_eq!(gpu, erode3(&m));
    }

    #[test]
    fn gpu_dilate_matches_cpu() {
        let m = test_mask();
        let (gpu, _) = gpu_morph(&m, MorphOp::Dilate, &GpuConfig::tesla_c2075()).unwrap();
        assert_eq!(gpu, dilate3(&m));
    }

    #[test]
    fn stencil_coalescing_with_and_without_cache() {
        // Each of the 9 loads is one warp instruction touching one or two
        // 128 B segments: ~10 transactions per warp without a cache. The
        // three rows are *re-touched* by neighbouring slots and warps, so
        // enabling the L2 model collapses most of them.
        let m = Mask::filled(Resolution::new(128, 64), 255);
        let (_, no_cache) = gpu_morph(&m, MorphOp::Erode, &GpuConfig::tesla_c2075()).unwrap();
        let lanes = no_cache.stats.lanes as f64;
        let tx_per_lane = no_cache.stats.global_load_tx as f64 / lanes;
        assert!(
            (0.25..0.40).contains(&tx_per_lane),
            "expected ~10 tx per 32-lane warp over 9 loads, got {tx_per_lane:.3}/lane"
        );
        let (_, cached) = gpu_morph(&m, MorphOp::Erode, &GpuConfig::tesla_c2075_with_l2()).unwrap();
        assert!(
            cached.stats.global_load_tx < no_cache.stats.global_load_tx / 4,
            "L2 must absorb the row re-touches: {} vs {}",
            cached.stats.global_load_tx,
            no_cache.stats.global_load_tx
        );
        // u8 stores: each 32-lane warp writes 32 consecutive bytes into
        // one 128 B segment — one transaction per warp (the model does
        // not merge stores across warps), i.e. 25% store efficiency.
        assert_eq!(no_cache.stats.global_store_tx, no_cache.stats.lanes / 32);
    }

    #[test]
    fn border_handling_matches_cpu_clamping() {
        // A full-foreground frame: erosion must clear exactly the border.
        let m = Mask::filled(Resolution::new(16, 8), 255);
        let (gpu, _) = gpu_morph(&m, MorphOp::Erode, &GpuConfig::tesla_c2075()).unwrap();
        assert_eq!(gpu, erode3(&m));
        assert_eq!(*gpu.get(0, 0), 0);
        assert_eq!(*gpu.get(1, 1), 255);
    }
}

//! GPU MoG kernels, one per optimization family.
//!
//! Kernels deliberately use CUDA-style indexed loops (`for ki in 0..k`),
//! mirroring the device code they model, rather than iterator chains.
#![allow(clippy::needless_range_loop)]
//!
//! The per-component arithmetic mirrors `mogpu_mog::update` operation for
//! operation, so kernel outputs are bit-identical to the CPU reference at
//! matching optimization levels (asserted by the integration tests). Every
//! arithmetic expression is accompanied by a `flop` charge and every
//! data-dependent conditional goes through `ctx.branch`, which is what
//! gives the simulator its branch-efficiency and issue-cycle counters.
//!
//! FLOP charging convention: add/sub/mul/compare/select = 1, division = 4,
//! square root = 4 (SFU-assisted on Fermi).

pub mod adaptive;
pub mod morph;
pub mod scan;
pub mod sorted;
pub mod tiled;

pub use adaptive::AdaptiveKernel;
pub use morph::{gpu_morph, gpu_morph_with, MorphKernel, MorphOp};
pub use scan::ScanKernel;
pub use sorted::SortedKernel;
pub use tiled::TiledKernel;

use crate::device::DeviceReal;
use crate::layout::DeviceModel;
use mogpu_mog::update::MAX_K;
use mogpu_mog::ResolvedParams;
use mogpu_sim::{Buffer, KernelResources, ThreadCtx};

/// The per-frame I/O every MoG kernel shares.
#[derive(Debug, Clone, Copy)]
pub struct FramePass<T: DeviceReal> {
    /// Gaussian parameters resident in device global memory.
    pub model: DeviceModel<T>,
    /// Input frame (u8 luma, `pixels` bytes).
    pub frame: Buffer,
    /// Output foreground mask (u8, `pixels` bytes).
    pub fg: Buffer,
    /// Problem size.
    pub pixels: usize,
    /// Resolved algorithm parameters.
    pub prm: ResolvedParams<T>,
    /// Declared register/shared/local footprint for this variant.
    pub resources: KernelResources,
}

/// Branchy match-and-update (Algorithm 1 lines 3–11 / Algorithm 4):
/// loads components, updates them with per-component `if match` branches,
/// and stores back — weights always, mean/sd only on the matched path
/// (which is why levels A–D show reduced store efficiency under
/// divergence). Returns `(w, m, sd, diff, matched)` register copies.
#[allow(clippy::type_complexity)]
pub(crate) fn update_branchy<T: DeviceReal>(
    ctx: &mut ThreadCtx<'_>,
    model: &DeviceModel<T>,
    i: usize,
    p: T,
    prm: &ResolvedParams<T>,
) -> ([T; MAX_K], [T; MAX_K], [T; MAX_K], [T; MAX_K], bool) {
    let k = prm.k;
    let mut w = [T::zero(); MAX_K];
    let mut m = [T::zero(); MAX_K];
    let mut sd = [T::zero(); MAX_K];
    let mut diff = [T::zero(); MAX_K];
    let mut matched = false;
    for ki in 0..k {
        ctx.int_op(1); // loop counter
        ctx.branch(ki < k); // uniform loop branch
        w[ki] = model.ld_w(ctx, i, ki);
        m[ki] = model.ld_m(ctx, i, ki);
        sd[ki] = model.ld_sd(ctx, i, ki);
        let d = (m[ki] - p).abs();
        T::flop(ctx, 2);
        diff[ki] = d;
        T::flop(ctx, 1); // compare
        if ctx.branch(d < prm.match_threshold) {
            w[ki] = prm.alpha * w[ki] + prm.one_minus_alpha;
            T::flop(ctx, 2);
            let tmp = prm.one_minus_alpha / w[ki];
            T::flop(ctx, 4);
            m[ki] = m[ki] + tmp * (p - m[ki]);
            T::flop(ctx, 3);
            let dm = p - m[ki];
            T::flop(ctx, 1);
            let var = sd[ki] * sd[ki] + tmp * (dm * dm - sd[ki] * sd[ki]);
            T::flop(ctx, 5);
            sd[ki] = var.max(prm.min_var).sqrt();
            T::flop(ctx, 5);
            matched = true;
            model.st_w(ctx, i, ki, w[ki]);
            model.st_m(ctx, i, ki, m[ki]);
            model.st_sd(ctx, i, ki, sd[ki]);
        } else {
            w[ki] = prm.alpha * w[ki];
            T::flop(ctx, 1);
            model.st_w(ctx, i, ki, w[ki]);
        }
    }
    if ctx.branch(!matched) {
        virtual_replace(ctx, model, i, p, &mut w, &mut m, &mut sd, &mut diff, prm);
    }
    (w, m, sd, diff, matched)
}

/// Source-level predicated match-and-update (Algorithm 5, levels E–W):
/// one execution path, all stores unconditional. Bit-identical parameter
/// results to [`update_branchy`] (the predicate multiplies by exactly 0 or
/// 1; the division guard never perturbs the selected path).
#[allow(clippy::type_complexity)]
pub(crate) fn update_predicated<T: DeviceReal>(
    ctx: &mut ThreadCtx<'_>,
    model: &DeviceModel<T>,
    i: usize,
    p: T,
    prm: &ResolvedParams<T>,
) -> ([T; MAX_K], [T; MAX_K], [T; MAX_K], [T; MAX_K], bool) {
    let k = prm.k;
    let mut w = [T::zero(); MAX_K];
    let mut m = [T::zero(); MAX_K];
    let mut sd = [T::zero(); MAX_K];
    let mut diff = [T::zero(); MAX_K];
    let mut matched = false;
    for ki in 0..k {
        ctx.int_op(1);
        ctx.branch(ki < k); // uniform loop branch
        w[ki] = model.ld_w(ctx, i, ki);
        m[ki] = model.ld_m(ctx, i, ki);
        sd[ki] = model.ld_sd(ctx, i, ki);
        let d = (m[ki] - p).abs();
        T::flop(ctx, 2);
        diff[ki] = d;
        let is_match = d < prm.match_threshold;
        T::flop(ctx, 1); // setp, no branch
        matched |= is_match;
        ctx.int_op(1);
        let mk = if is_match { T::one() } else { T::zero() };
        T::flop(ctx, 1); // select
        w[ki] = prm.alpha * w[ki] + mk * prm.one_minus_alpha;
        T::flop(ctx, 3);
        let tmp = prm.one_minus_alpha / w[ki].max(T::from_f64(1e-30));
        T::flop(ctx, 5);
        let m_new = m[ki] + tmp * (p - m[ki]);
        T::flop(ctx, 3);
        m[ki] = (T::one() - mk) * m[ki] + mk * m_new;
        T::flop(ctx, 4);
        let dm = p - m[ki];
        T::flop(ctx, 1);
        let var = sd[ki] * sd[ki] + tmp * (dm * dm - sd[ki] * sd[ki]);
        T::flop(ctx, 5);
        let sd_new = var.max(prm.min_var).sqrt();
        T::flop(ctx, 5);
        sd[ki] = (T::one() - mk) * sd[ki] + mk * sd_new;
        T::flop(ctx, 4);
        model.st_w(ctx, i, ki, w[ki]);
        model.st_m(ctx, i, ki, m[ki]);
        model.st_sd(ctx, i, ki, sd[ki]);
    }
    if ctx.branch(!matched) {
        virtual_replace(ctx, model, i, p, &mut w, &mut m, &mut sd, &mut diff, prm);
    }
    (w, m, sd, diff, matched)
}

/// Shared-memory counterpart of [`virtual_replace`] for the tiled kernel:
/// the weakest component (by the register copies of the just-updated
/// weights) is overwritten in shared memory.
pub(crate) fn virtual_replace_shared<T: DeviceReal>(
    ctx: &mut ThreadCtx<'_>,
    kernel: &tiled::TiledKernel<T>,
    t: usize,
    p: T,
    w: &[T; MAX_K],
) {
    let prm = &kernel.pass.prm;
    let k = prm.k;
    let mut weakest = 0usize;
    for ki in 1..k {
        T::flop(ctx, 1);
        ctx.int_op(1);
        if w[ki] < w[weakest] {
            weakest = ki;
        }
    }
    T::sh_st(ctx, kernel.sh_off(t, weakest, 0), prm.initial_weight);
    T::sh_st(ctx, kernel.sh_off(t, weakest, 1), p);
    T::sh_st(ctx, kernel.sh_off(t, weakest, 2), prm.initial_sd);
}

/// Algorithm 1 lines 12–15: replace the smallest-weight component with a
/// virtual component centred on the pixel. Mirrors
/// `mogpu_mog::update::replace_weakest`; executed only by mismatching
/// lanes (callers branch).
#[allow(clippy::too_many_arguments)]
pub(crate) fn virtual_replace<T: DeviceReal>(
    ctx: &mut ThreadCtx<'_>,
    model: &DeviceModel<T>,
    i: usize,
    p: T,
    w: &mut [T; MAX_K],
    m: &mut [T; MAX_K],
    sd: &mut [T; MAX_K],
    diff: &mut [T; MAX_K],
    prm: &ResolvedParams<T>,
) {
    let k = prm.k;
    let mut weakest = 0usize;
    for ki in 1..k {
        T::flop(ctx, 1); // compare
        ctx.int_op(1); // select index
        if w[ki] < w[weakest] {
            weakest = ki;
        }
    }
    w[weakest] = prm.initial_weight;
    m[weakest] = p;
    sd[weakest] = prm.initial_sd;
    diff[weakest] = T::zero();
    model.st_w(ctx, i, weakest, w[weakest]);
    model.st_m(ctx, i, weakest, m[weakest]);
    model.st_sd(ctx, i, weakest, sd[weakest]);
}

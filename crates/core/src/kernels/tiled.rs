//! Level W: the windowed/tiled MoG of Section IV-D.
//!
//! Frames are processed in **groups**: each block stages the Gaussian
//! parameters of its 128-pixel tile from global memory into shared
//! memory once, processes the tile across every frame of the group
//! (updating parameters in shared memory), and writes the parameters back
//! once — cutting the dominant Gaussian-parameter DRAM traffic by the
//! group size, at the cost of shared-memory-limited occupancy
//! (~42% instead of 67%).
//!
//! Shared layout is pixel-major ("AoS in shared"): thread `t`'s component
//! `ki` parameter `param` sits at byte `((t*K + ki)*3 + param) *
//! size_of::<T>()`. For f64 this strides 18 words per thread — gcd(18,32)
//! = 2 banks — the mild bank conflict a straightforward port exhibits.
//! [`TiledKernel::record_stride`] exposes the stride for the padding
//! ablation (`exp_ablation`).

use super::{virtual_replace_shared, FramePass};
use crate::device::DeviceReal;
use mogpu_sim::{Buffer, Kernel, KernelResources, ThreadCtx};

/// Windowed MoG kernel processing `frames.len()` frames per launch.
#[derive(Debug, Clone)]
pub struct TiledKernel<T: DeviceReal> {
    /// Model / parameters / resources (the `frame` and `fg` buffers of
    /// the pass are unused; the group buffers below supersede them).
    pub pass: FramePass<T>,
    /// Input frames of the group, in presentation order.
    pub frames: Vec<Buffer>,
    /// Output masks of the group.
    pub fgs: Vec<Buffer>,
    /// Per-thread record stride in shared memory, in elements of `T`.
    /// `None` packs records tightly (`K*3` elements — the paper-faithful
    /// port; for K=3/f64 the 18-word stride costs only a 2-way bank
    /// conflict). `Some(16)` reproduces the classic pitfall of padding
    /// records to a power of two "for alignment": a 32-word stride maps
    /// every lane to the same bank — quantified by `exp_ablation`.
    pub record_stride: Option<usize>,
}

impl<T: DeviceReal> TiledKernel<T> {
    /// Effective record stride in elements.
    pub fn stride(&self) -> usize {
        self.record_stride.unwrap_or(self.pass.prm.k * 3)
    }

    #[inline]
    pub(crate) fn sh_off(&self, t: usize, ki: usize, param: usize) -> usize {
        (t * self.stride() + ki * 3 + param) * T::BYTES
    }
}

impl<T: DeviceReal> Kernel for TiledKernel<T> {
    fn resources(&self) -> KernelResources {
        self.pass.resources
    }

    fn run(&self, ctx: &mut ThreadCtx<'_>) {
        let pass = &self.pass;
        let i = ctx.global_thread_id();
        let t = ctx.thread_idx();
        ctx.int_op(2);
        if !ctx.branch(i < pass.pixels) {
            return;
        }
        let prm = pass.prm;
        let k = prm.k;

        // Stage this thread's components into shared memory.
        for ki in 0..k {
            ctx.int_op(1);
            ctx.branch(ki < k); // uniform loop branch
            let w = pass.model.ld_w(ctx, i, ki);
            let m = pass.model.ld_m(ctx, i, ki);
            let sd = pass.model.ld_sd(ctx, i, ki);
            T::sh_st(ctx, self.sh_off(t, ki, 0), w);
            T::sh_st(ctx, self.sh_off(t, ki, 1), m);
            T::sh_st(ctx, self.sh_off(t, ki, 2), sd);
        }
        ctx.sync();

        // Process every frame of the group against the staged model.
        // Per-frame math is the level-F formulation (predicated update +
        // recomputed diff) operating on shared memory.
        for (f, (frame, fg)) in self.frames.iter().zip(&self.fgs).enumerate() {
            ctx.int_op(1);
            ctx.branch(f < self.frames.len()); // uniform group-loop branch
            let p = T::from_u8(ctx.ld_u8(*frame, i));
            ctx.int_op(1);

            let mut matched = false;
            let mut w_reg = [T::zero(); mogpu_mog::update::MAX_K];
            for ki in 0..k {
                ctx.int_op(1);
                ctx.branch(ki < k); // uniform loop branch
                let mut w = T::sh_ld(ctx, self.sh_off(t, ki, 0));
                let mut m = T::sh_ld(ctx, self.sh_off(t, ki, 1));
                let mut sd = T::sh_ld(ctx, self.sh_off(t, ki, 2));
                let d = (m - p).abs();
                T::flop(ctx, 2);
                let is_match = d < prm.match_threshold;
                T::flop(ctx, 1);
                matched |= is_match;
                ctx.int_op(1);
                let mk = if is_match { T::one() } else { T::zero() };
                T::flop(ctx, 1);
                w = prm.alpha * w + mk * prm.one_minus_alpha;
                T::flop(ctx, 3);
                let tmp = prm.one_minus_alpha / w.max(T::from_f64(1e-30));
                T::flop(ctx, 5);
                let m_new = m + tmp * (p - m);
                T::flop(ctx, 3);
                m = (T::one() - mk) * m + mk * m_new;
                T::flop(ctx, 4);
                let dm = p - m;
                T::flop(ctx, 1);
                let var = sd * sd + tmp * (dm * dm - sd * sd);
                T::flop(ctx, 5);
                let sd_new = var.max(prm.min_var).sqrt();
                T::flop(ctx, 5);
                sd = (T::one() - mk) * sd + mk * sd_new;
                T::flop(ctx, 4);
                T::sh_st(ctx, self.sh_off(t, ki, 0), w);
                T::sh_st(ctx, self.sh_off(t, ki, 1), m);
                T::sh_st(ctx, self.sh_off(t, ki, 2), sd);
                w_reg[ki] = w;
            }
            if ctx.branch(!matched) {
                virtual_replace_shared(ctx, self, t, p, &w_reg);
            }

            // Classification (level-F style, from shared memory).
            let mut fgv = 1u8;
            for ki in 0..k {
                ctx.int_op(1);
                ctx.branch(ki < k); // uniform loop branch
                let w = T::sh_ld(ctx, self.sh_off(t, ki, 0));
                let m = T::sh_ld(ctx, self.sh_off(t, ki, 1));
                let sd = T::sh_ld(ctx, self.sh_off(t, ki, 2));
                let d = (m - p).abs();
                T::flop(ctx, 2);
                let bg = w >= prm.bg_weight && d / sd < prm.bg_sigma_ratio;
                T::flop(ctx, 6);
                if ctx.branch(bg) {
                    fgv = 0;
                    break;
                }
            }
            ctx.st_u8(*fg, i, if fgv == 1 { 255 } else { 0 });
        }
        ctx.sync();

        // Write the tile's parameters back to global memory.
        for ki in 0..k {
            ctx.int_op(1);
            ctx.branch(ki < k); // uniform loop branch
            let w = T::sh_ld(ctx, self.sh_off(t, ki, 0));
            let m = T::sh_ld(ctx, self.sh_off(t, ki, 1));
            let sd = T::sh_ld(ctx, self.sh_off(t, ki, 2));
            pass.model.st_w(ctx, i, ki, w);
            pass.model.st_m(ctx, i, ki, m);
            pass.model.st_sd(ctx, i, ki, sd);
        }
    }
}

//! Levels D–F: the algorithm-specific optimizations — no-sort scanning
//! (D), source-level predication (E), and register reduction (F).

use super::{update_branchy, update_predicated, FramePass};
use crate::device::DeviceReal;
use mogpu_sim::{Kernel, KernelResources, ThreadCtx};

/// The unconditional-scan MoG kernel (Algorithm 3), configurable through
/// the two algorithm-specific optimizations of Table III:
///
/// * `predicated` — parameter updates use the single-path predicated
///   formulation of Algorithm 5 (level E) instead of branches (level D);
/// * `recompute_diff` — classification recomputes `|m − p|` from the
///   updated mean instead of holding `diff[]` live across the phases
///   (level F, the register-reduction transformation; the recomputed
///   value differs slightly because the mean has moved, the source of the
///   paper's 97% -> 95% foreground-quality delta).
#[derive(Debug, Clone, Copy)]
pub struct ScanKernel<T: DeviceReal> {
    /// Frame I/O and parameters.
    pub pass: FramePass<T>,
    /// Use Algorithm 5's predicated update.
    pub predicated: bool,
    /// Recompute `diff` during classification (level F).
    pub recompute_diff: bool,
}

impl<T: DeviceReal> Kernel for ScanKernel<T> {
    fn resources(&self) -> KernelResources {
        self.pass.resources
    }

    fn run(&self, ctx: &mut ThreadCtx<'_>) {
        let pass = &self.pass;
        let i = ctx.global_thread_id();
        ctx.int_op(2);
        if !ctx.branch(i < pass.pixels) {
            return;
        }
        let prm = &pass.prm;
        let k = prm.k;
        let p = T::from_u8(ctx.ld_u8(pass.frame, i));
        ctx.int_op(1);

        let (w, m, sd, diff, _matched) = if self.predicated {
            update_predicated(ctx, &pass.model, i, p, prm)
        } else {
            update_branchy(ctx, &pass.model, i, p, prm)
        };

        // Unconditional scan of all components in index order (no rank,
        // no sort). The early exit of Algorithm 3 line 4 remains — it is
        // cheap and its divergence is minor compared to the sort's.
        let mut fgv = 1u8;
        for ki in 0..k {
            ctx.int_op(1);
            ctx.branch(ki < k); // uniform loop branch
            let d = if self.recompute_diff {
                // Level F: |m - p| recomputed against the updated mean.
                let d = (m[ki] - p).abs();
                T::flop(ctx, 2);
                d
            } else {
                diff[ki]
            };
            let bg = w[ki] >= prm.bg_weight && d / sd[ki] < prm.bg_sigma_ratio;
            T::flop(ctx, 6);
            if ctx.branch(bg) {
                fgv = 0;
                break;
            }
        }
        ctx.st_u8(pass.fg, i, if fgv == 1 { 255 } else { 0 });
    }
}

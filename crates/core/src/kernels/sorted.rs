//! Levels A–C: the direct translation of the serial algorithm — branchy
//! updates plus rank/sort/early-exit classification.
//!
//! The rank, diff and sort bookkeeping arrays are dynamically indexed, so
//! the CUDA 4.2 compiler spills them to **local memory**; this kernel
//! reproduces that with explicit `ld_local`/`st_local` traffic (2·K
//! slots). Dropping the sort in level D is what frees those slots and the
//! 4 registers the paper reports.

use super::{update_branchy, FramePass};
use crate::device::DeviceReal;
use mogpu_mog::update::MAX_K;
use mogpu_sim::{Kernel, KernelResources, ThreadCtx};

/// Sorted/branchy MoG kernel (levels A and B/C differ only in the
/// [`crate::layout::Layout`] of the [`FramePass::model`] and in the host
/// pipeline's overlap mode).
#[derive(Debug, Clone, Copy)]
pub struct SortedKernel<T: DeviceReal> {
    /// Frame I/O and parameters.
    pub pass: FramePass<T>,
}

impl<T: DeviceReal> Kernel for SortedKernel<T> {
    fn resources(&self) -> KernelResources {
        self.pass.resources
    }

    fn run(&self, ctx: &mut ThreadCtx<'_>) {
        let pass = &self.pass;
        let i = ctx.global_thread_id();
        ctx.int_op(2); // blockIdx*blockDim+threadIdx
        if !ctx.branch(i < pass.pixels) {
            return;
        }
        let prm = &pass.prm;
        let k = prm.k;
        let p = T::from_u8(ctx.ld_u8(pass.frame, i));
        ctx.int_op(1); // u8 -> float convert

        // Phase 1: match & update (branchy), keeping register copies.
        let (w, _m, sd, diff, _matched) = update_branchy(ctx, &pass.model, i, p, prm);

        // Spill diff[] to local memory (dynamically indexed later).
        for ki in 0..k {
            ctx.st_local(ki, diff[ki].to_f64());
        }

        // Phase 2a: rank = w/sd, spilled for the sort.
        let mut order = [0usize; MAX_K];
        for ki in 0..k {
            ctx.int_op(1);
            ctx.branch(ki < k); // uniform loop branch
            order[ki] = ki;
            let rank = w[ki] / sd[ki];
            T::flop(ctx, 4);
            ctx.st_local(k + ki, rank.to_f64());
        }

        // Phase 2b: insertion sort of component indices by descending
        // rank. Comparison counts are data dependent => divergence, the
        // behaviour level D eliminates.
        for ii in 1..k {
            let mut j = ii;
            loop {
                let cont = j > 0 && {
                    let a = ctx.ld_local(k + order[j - 1]);
                    let b = ctx.ld_local(k + order[j]);
                    T::flop(ctx, 1); // compare
                    a < b
                };
                if !ctx.branch(cont) {
                    break;
                }
                order.swap(j - 1, j);
                ctx.int_op(2);
                j -= 1;
            }
        }

        // Phase 2c: scan in rank order with early exit (Algorithm 2).
        let mut fgv = 1u8;
        for idx in 0..k {
            let ci = order[idx];
            ctx.int_op(1); // order[] indexing
            let d = T::from_f64(ctx.ld_local(ci));
            let bg = w[ci] >= prm.bg_weight && d / sd[ci] < prm.bg_sigma_ratio;
            T::flop(ctx, 6); // cmp + div + cmp + and
            if ctx.branch(bg) {
                fgv = 0;
                break;
            }
        }
        ctx.st_u8(pass.fg, i, if fgv == 1 { 255 } else { 0 });
    }
}

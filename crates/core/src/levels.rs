//! Optimization levels A–F and W (paper Tables II and III) and their
//! declared kernel resource footprints.

use crate::layout::Layout;
use mogpu_mog::Variant;
use mogpu_sim::dma::OverlapMode;
use mogpu_sim::KernelResources;
use serde::{Deserialize, Serialize};

/// A step of the paper's optimization ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OptLevel {
    /// Base implementation: direct CUDA translation (AoS layout, branchy
    /// sorted algorithm, sequential transfers).
    A,
    /// + memory coalescing (SoA layout).
    B,
    /// + overlapped data transfer and kernel execution.
    C,
    /// + divergent-branch elimination (no rank/sort).
    D,
    /// + source-level predicated execution.
    E,
    /// + register-usage reduction (recomputed `diff`).
    F,
    /// Windowed/tiled MoG in shared memory over frame groups
    /// (Section IV-D; the paper's best point is `group = 8`).
    Windowed {
        /// Frames per group.
        group: usize,
    },
}

impl OptLevel {
    /// The six ladder levels, in paper order.
    pub const LADDER: [OptLevel; 6] = [
        OptLevel::A,
        OptLevel::B,
        OptLevel::C,
        OptLevel::D,
        OptLevel::E,
        OptLevel::F,
    ];

    /// Display name ("A".."F" or "W(g)").
    pub fn name(&self) -> String {
        match self {
            OptLevel::A => "A".into(),
            OptLevel::B => "B".into(),
            OptLevel::C => "C".into(),
            OptLevel::D => "D".into(),
            OptLevel::E => "E".into(),
            OptLevel::F => "F".into(),
            OptLevel::Windowed { group } => format!("W({group})"),
        }
    }

    /// Gaussian-parameter memory layout at this level.
    pub fn layout(&self) -> Layout {
        match self {
            OptLevel::A => Layout::Aos,
            _ => Layout::Soa,
        }
    }

    /// Host transfer scheduling at this level.
    pub fn overlap(&self) -> OverlapMode {
        match self {
            OptLevel::A | OptLevel::B => OverlapMode::Sequential,
            _ => OverlapMode::DoubleBuffered,
        }
    }

    /// Frames processed per kernel launch.
    pub fn group(&self) -> usize {
        match self {
            OptLevel::Windowed { group } => (*group).max(1),
            _ => 1,
        }
    }

    /// The CPU algorithm variant this level's kernel is functionally
    /// equivalent to (bit-exact through E; near-exact for F/W).
    pub fn cpu_variant(&self) -> Variant {
        match self {
            OptLevel::A | OptLevel::B | OptLevel::C => Variant::Sorted,
            OptLevel::D => Variant::NoSort,
            OptLevel::E => Variant::Predicated,
            OptLevel::F | OptLevel::Windowed { .. } => Variant::RegisterReduced,
        }
    }

    /// Registers per thread as `nvcc` would report.
    ///
    /// The double-precision 3-Gaussian values are the paper's own
    /// (Fig. 6(b)/7(c)): A 30, B/C 36, D 32, E 33, F 31, W 31. Other
    /// configurations scale from those measurements: single precision
    /// halves the value-register pressure (an f64 value occupies two
    /// 32-bit registers) plus bookkeeping, and each extra Gaussian
    /// component adds two live f64 values.
    pub fn registers(&self, real_bytes: usize, k: usize) -> u32 {
        let base: u32 = match self {
            OptLevel::A => 30,
            OptLevel::B | OptLevel::C => 36,
            OptLevel::D => 32,
            OptLevel::E => 33,
            OptLevel::F | OptLevel::Windowed { .. } => 31,
        };
        let extra_k = k.saturating_sub(3) as u32;
        if real_bytes == 4 {
            base / 2 + 6 + extra_k
        } else {
            base + 2 * extra_k
        }
    }

    /// Local-memory (spill) f64 slots per thread: the sorted kernels spill
    /// `diff[]` and `rank[]` (2·K); the tuned kernels spill nothing.
    pub fn local_slots(&self, k: usize) -> usize {
        match self {
            OptLevel::A | OptLevel::B | OptLevel::C => 2 * k,
            _ => 0,
        }
    }

    /// Static shared memory per block: only the windowed kernel stages its
    /// tile's parameters (threads/block x K x 3 parameters).
    pub fn shared_bytes(&self, threads_per_block: u32, k: usize, real_bytes: usize) -> usize {
        match self {
            OptLevel::Windowed { .. } => threads_per_block as usize * k * 3 * real_bytes,
            _ => 0,
        }
    }

    /// Complete resource declaration for a launch configuration.
    pub fn resources(
        &self,
        threads_per_block: u32,
        k: usize,
        real_bytes: usize,
    ) -> KernelResources {
        KernelResources {
            regs_per_thread: self.registers(real_bytes, k),
            shared_bytes_per_block: self.shared_bytes(threads_per_block, k, real_bytes),
            local_f64_slots: self.local_slots(k),
        }
    }
}

impl std::fmt::Display for OptLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_register_counts() {
        assert_eq!(OptLevel::A.registers(8, 3), 30);
        assert_eq!(OptLevel::B.registers(8, 3), 36);
        assert_eq!(OptLevel::C.registers(8, 3), 36);
        assert_eq!(OptLevel::D.registers(8, 3), 32);
        assert_eq!(OptLevel::E.registers(8, 3), 33);
        assert_eq!(OptLevel::F.registers(8, 3), 31);
    }

    #[test]
    fn five_gaussians_use_more_registers() {
        for level in OptLevel::LADDER {
            assert!(level.registers(8, 5) > level.registers(8, 3));
        }
    }

    #[test]
    fn float_uses_fewer_registers() {
        for level in OptLevel::LADDER {
            assert!(level.registers(4, 3) < level.registers(8, 3));
        }
    }

    #[test]
    fn layouts_and_overlap_follow_the_ladder() {
        assert_eq!(OptLevel::A.layout(), Layout::Aos);
        assert_eq!(OptLevel::B.layout(), Layout::Soa);
        assert_eq!(OptLevel::A.overlap(), OverlapMode::Sequential);
        assert_eq!(OptLevel::B.overlap(), OverlapMode::Sequential);
        assert_eq!(OptLevel::C.overlap(), OverlapMode::DoubleBuffered);
        assert_eq!(
            OptLevel::Windowed { group: 8 }.overlap(),
            OverlapMode::DoubleBuffered
        );
    }

    #[test]
    fn windowed_shared_footprint_matches_paper_scale() {
        // 128 threads x 3 components x 3 params x 8 B = 9216 B: five
        // blocks fit in 48 KB => ~42% occupancy (paper Fig. 10: ~40%).
        let w = OptLevel::Windowed { group: 8 };
        assert_eq!(w.shared_bytes(128, 3, 8), 9216);
        assert_eq!(OptLevel::F.shared_bytes(128, 3, 8), 0);
    }

    #[test]
    fn only_sorted_levels_spill() {
        assert_eq!(OptLevel::A.local_slots(3), 6);
        assert_eq!(OptLevel::C.local_slots(3), 6);
        assert_eq!(OptLevel::D.local_slots(3), 0);
        assert_eq!(OptLevel::Windowed { group: 4 }.local_slots(3), 0);
    }

    #[test]
    fn group_clamps_to_one() {
        assert_eq!(OptLevel::Windowed { group: 0 }.group(), 1);
        assert_eq!(OptLevel::F.group(), 1);
        assert_eq!(OptLevel::Windowed { group: 8 }.group(), 8);
    }

    #[test]
    fn names_render() {
        assert_eq!(OptLevel::A.name(), "A");
        assert_eq!(OptLevel::Windowed { group: 8 }.name(), "W(8)");
    }
}

//! Multi-stream host pipeline: [`MultiGpuMog`] serves N independent
//! camera streams from one simulated device.
//!
//! Each stream owns a full [`GpuMog`] model state (Gaussian parameters
//! plus its double-buffered frame/mask buffers), allocated against a
//! single shared device-memory budget — constructing more streams than
//! the device can hold fails with the usual out-of-memory error instead
//! of silently over-committing. Each stream also inherits `GpuMog`'s
//! cached [`mogpu_sim::BatchLauncher`]: the grid is validated and
//! occupancy derived once per stream, then every frame of the stream's
//! sequence reuses that plan instead of re-deriving the launch setup. Frames are executed *functionally* in
//! parallel across streams (rayon; streams share no model state), while
//! *timing* is serialized through the [`StreamScheduler`]: one compute
//! engine and `cfg.copy_engines` copy engines are list-scheduled across
//! every stream's upload/kernel/download stages with a bounded in-flight
//! buffer count per stream, exactly as CUDA streams share a device.
//!
//! The report carries per-stream device sojourn latency (bounded by the
//! buffer cap — the point of fixing the infinite-buffer schedule) plus
//! aggregate throughput, and the full [`StreamSchedule`] for Chrome
//! trace export (one track triple per stream).

use crate::device::DeviceReal;
use crate::levels::OptLevel;
use crate::pipeline::{GpuMog, PipelineError, RunReport};
use mogpu_frame::{Frame, Mask, Resolution};
use mogpu_mog::MogParams;
use mogpu_sim::serving::{serving_report, ServingReport, ServingWindowConfig, SloConfig};
use mogpu_sim::streams::{
    LatencyStats, StageTimes, StreamInput, StreamSchedule, StreamScheduler, DOUBLE_BUFFER,
};
use mogpu_sim::telemetry::{sample_streams, PipelineTelemetry, TelemetryConfig};
use mogpu_sim::GpuConfig;
use rayon::prelude::*;
use std::sync::Mutex;

/// Result of one stream within a multi-stream run.
#[derive(Debug, Clone)]
pub struct StreamRunReport {
    /// Foreground masks, one per processed frame of this stream.
    pub masks: Vec<Mask>,
    /// Frames this stream processed.
    pub frames: usize,
    /// Modelled kernel seconds, summed over this stream's frames.
    pub kernel_time_total: f64,
    /// Device sojourn latency (upload start to download end) per frame.
    pub latency: LatencyStats,
    /// When this stream's last download finished (seconds from start).
    pub completion: f64,
    /// This stream's own frame rate: frames over completion time.
    pub fps: f64,
}

/// Aggregate result of a multi-stream run.
#[derive(Debug, Clone)]
pub struct MultiStreamReport {
    /// Per-stream results, in stream order.
    pub per_stream: Vec<StreamRunReport>,
    /// The full engine schedule (exportable via
    /// `TraceBuilder::add_multi_stream`).
    pub schedule: StreamSchedule,
    /// Total frames across all streams.
    pub total_frames: usize,
    /// End of the last download (seconds).
    pub makespan: f64,
    /// Aggregate throughput: total frames over the makespan.
    pub aggregate_fps: f64,
    /// Fraction of the makespan the compute engine was busy.
    pub kernel_utilization: f64,
    /// Time-resolved per-SM and device-wide counter series over the
    /// shared-engine schedule (every stream's launches and copies on one
    /// clock).
    pub telemetry: PipelineTelemetry,
    /// Serving observability: SLO-judged latency histograms, windowed
    /// snapshots with monotone counters, and the structured event log
    /// (see [`mogpu_sim::serving`]).
    pub serving: ServingReport,
}

impl MultiStreamReport {
    /// Worst per-stream device sojourn latency (seconds).
    pub fn worst_latency(&self) -> f64 {
        self.per_stream
            .iter()
            .map(|s| s.latency.max)
            .fold(0.0f64, f64::max)
    }
}

/// N per-stream [`GpuMog`] states multiplexed onto one simulated device.
///
/// ```
/// use mogpu_core::{MultiGpuMog, OptLevel};
/// use mogpu_frame::{Resolution, SceneBuilder};
/// use mogpu_mog::MogParams;
/// use mogpu_sim::GpuConfig;
///
/// // Two cameras, two scenes.
/// let scenes: Vec<_> = (0..2u64)
///     .map(|s| {
///         SceneBuilder::new(Resolution::TINY).seed(s).walkers(1).build()
///             .render_sequence(5).0.into_frames()
///     })
///     .collect();
/// let seeds: Vec<&[u8]> = scenes.iter().map(|f| f[0].as_slice()).collect();
/// let mut multi = MultiGpuMog::<f64>::new(
///     Resolution::TINY,
///     MogParams::default(),
///     OptLevel::F,
///     &seeds,
///     GpuConfig::tesla_c2075(),
/// ).unwrap();
/// let frames: Vec<Vec<_>> = scenes.iter().map(|f| f[1..].to_vec()).collect();
/// let report = multi.process_all(&frames).unwrap();
/// assert_eq!(report.total_frames, 8);
/// assert!(report.aggregate_fps > 0.0);
/// ```
#[derive(Debug)]
pub struct MultiGpuMog<T: DeviceReal> {
    streams: Vec<GpuMog<T>>,
    cfg: GpuConfig,
    buffers_per_stream: usize,
    arrival_period: f64,
    site: String,
    slo: SloConfig,
    window: ServingWindowConfig,
}

impl<T: DeviceReal> MultiGpuMog<T> {
    /// Allocates one [`GpuMog`] per entry of `seed_frames`, all sharing
    /// the device-memory budget of `cfg` (stream `s` allocates from what
    /// streams `0..s` left over). Defaults to double buffering and
    /// offline (as-fast-as-possible) frame arrival.
    ///
    /// # Errors
    /// Configuration errors, and device out-of-memory once the combined
    /// footprint of the streams exceeds the device.
    pub fn new(
        resolution: Resolution,
        params: MogParams,
        level: OptLevel,
        seed_frames: &[&[u8]],
        cfg: GpuConfig,
    ) -> Result<Self, PipelineError> {
        if seed_frames.is_empty() {
            return Err(PipelineError::Config(
                "multi-stream pipeline needs at least one stream".into(),
            ));
        }
        let mut budget = cfg.device_mem_bytes;
        let mut streams = Vec::with_capacity(seed_frames.len());
        for seed in seed_frames {
            let mut sub = cfg.clone();
            sub.device_mem_bytes = budget;
            let gpu = GpuMog::<T>::new(resolution, params, level, seed, sub)?;
            budget = budget.saturating_sub(gpu.device_allocated());
            streams.push(gpu);
        }
        Ok(MultiGpuMog {
            streams,
            cfg,
            buffers_per_stream: DOUBLE_BUFFER,
            arrival_period: 0.0,
            site: format!("level {level}"),
            slo: SloConfig::default(),
            window: ServingWindowConfig::default(),
        })
    }

    /// Sets the in-flight device buffer count per stream (min 1;
    /// 2 = double buffering, the default).
    pub fn with_buffers(mut self, buffers: usize) -> Self {
        self.buffers_per_stream = buffers.max(1);
        self
    }

    /// Paces every stream at one frame per `period` seconds (a live
    /// camera), instead of the offline default where all frames are
    /// available up front.
    pub fn with_arrival_period(mut self, period: f64) -> Self {
        self.arrival_period = period.max(0.0);
        self
    }

    /// Sets the serving SLO every frame's end-to-end latency is judged
    /// against (default: 40 ms deadline, 1% error budget).
    pub fn with_slo(mut self, slo: SloConfig) -> Self {
        self.slo = slo;
        self
    }

    /// Sets the serving snapshot window on the schedule clock (seconds;
    /// 0 = auto-size to makespan / 8).
    pub fn with_window(mut self, window_s: f64) -> Self {
        self.window = ServingWindowConfig {
            window_s: window_s.max(0.0),
        };
        self
    }

    /// Number of streams.
    pub fn stream_count(&self) -> usize {
        self.streams.len()
    }

    /// Combined device bytes allocated across all streams.
    pub fn device_allocated(&self) -> usize {
        self.streams.iter().map(GpuMog::device_allocated).sum()
    }

    /// Processes each stream's frame sequence: functional execution is
    /// stream-parallel (independent model states), timing is serialized
    /// through the shared-engine [`StreamScheduler`].
    ///
    /// # Errors
    /// Mismatched stream count, empty streams, and any per-stream
    /// pipeline error.
    pub fn process_all(
        &mut self,
        frames_per_stream: &[Vec<Frame<u8>>],
    ) -> Result<MultiStreamReport, PipelineError> {
        if frames_per_stream.len() != self.streams.len() {
            return Err(PipelineError::Config(format!(
                "{} frame sequences for {} streams",
                frames_per_stream.len(),
                self.streams.len()
            )));
        }
        if frames_per_stream.iter().any(Vec::is_empty) {
            return Err(PipelineError::Config(
                "every stream needs at least one frame".into(),
            ));
        }

        // Functional pass: streams share no model state, so their
        // kernels execute in parallel; each slot is locked exactly once
        // by its own index.
        type Slot<'a, T> = Mutex<(&'a mut GpuMog<T>, &'a [Frame<u8>])>;
        let slots: Vec<Slot<'_, T>> = self
            .streams
            .iter_mut()
            .zip(frames_per_stream)
            .map(|(gpu, frames)| Mutex::new((gpu, frames.as_slice())))
            .collect();
        let results: Vec<Result<RunReport, PipelineError>> = (0..slots.len())
            .into_par_iter()
            .map(|s| {
                let mut slot = slots[s].lock().expect("stream slot poisoned");
                let (gpu, frames) = &mut *slot;
                gpu.process_all(frames)
            })
            .collect();
        let mut reports = Vec::with_capacity(results.len());
        for r in results {
            reports.push(r?);
        }

        // Timing pass: place every stream's stages on the shared engines.
        let inputs: Vec<StreamInput> = reports
            .iter()
            .map(|r| StreamInput {
                stages: r
                    .per_frame_kernel_times
                    .iter()
                    .map(|&k| StageTimes {
                        h2d: r.h2d_per_frame,
                        kernel: k,
                        d2h: r.d2h_per_frame,
                    })
                    .collect(),
                arrival_period: self.arrival_period,
            })
            .collect();
        let schedule = StreamScheduler::new(self.buffers_per_stream)
            .try_schedule(&inputs, &self.cfg)
            .map_err(|e| PipelineError::Config(format!("invalid stream input: {e}")))?;
        let per_stream_counters: Vec<(&mogpu_sim::KernelStats, &mogpu_sim::Occupancy)> =
            reports.iter().map(|r| (&r.stats, &r.occupancy)).collect();
        let telemetry = sample_streams(
            &schedule,
            &per_stream_counters,
            &self.cfg,
            &TelemetryConfig::default(),
        );

        let per_stream = reports
            .into_iter()
            .enumerate()
            .map(|(s, r)| {
                let completion = schedule.stream_completion(s);
                StreamRunReport {
                    frames: r.frames,
                    kernel_time_total: r.kernel_time_total,
                    latency: schedule.stream_latency(s),
                    completion,
                    fps: if completion > 0.0 {
                        r.frames as f64 / completion
                    } else {
                        0.0
                    },
                    masks: r.masks,
                }
            })
            .collect::<Vec<_>>();
        let total_frames = schedule.total_frames();
        let makespan = schedule.makespan();
        let arrival_periods = vec![self.arrival_period; inputs.len()];
        let serving = serving_report(
            &schedule,
            &arrival_periods,
            &self.cfg.name,
            &self.site,
            &self.slo,
            &self.window,
            Some(&telemetry),
        );
        Ok(MultiStreamReport {
            per_stream,
            total_frames,
            makespan,
            aggregate_fps: schedule.aggregate_fps(),
            kernel_utilization: schedule.kernel_utilization(),
            schedule,
            telemetry,
            serving,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mogpu_frame::SceneBuilder;

    fn scene_frames(seed: u64, n: usize) -> Vec<Frame<u8>> {
        SceneBuilder::new(Resolution::TINY)
            .seed(seed)
            .walkers(2)
            .build()
            .render_sequence(n)
            .0
            .into_frames()
    }

    fn multi(seeds: &[Vec<Frame<u8>>], level: OptLevel) -> MultiGpuMog<f64> {
        let seed_slices: Vec<&[u8]> = seeds.iter().map(|f| f[0].as_slice()).collect();
        MultiGpuMog::<f64>::new(
            Resolution::TINY,
            MogParams::default(),
            level,
            &seed_slices,
            GpuConfig::tesla_c2075(),
        )
        .unwrap()
    }

    /// The multi-stream pipeline with one stream is the single-stream
    /// pipeline: masks bit-identical to `GpuMog::process_all`.
    #[test]
    fn single_stream_is_bit_identical_to_gpu_mog() {
        let frames = scene_frames(11, 7);
        for level in [OptLevel::B, OptLevel::F] {
            let mut single = GpuMog::<f64>::new(
                Resolution::TINY,
                MogParams::default(),
                level,
                frames[0].as_slice(),
                GpuConfig::tesla_c2075(),
            )
            .unwrap();
            let expect = single.process_all(&frames[1..]).unwrap();
            let mut m = multi(std::slice::from_ref(&frames), level);
            let got = m.process_all(&[frames[1..].to_vec()]).unwrap();
            assert_eq!(got.per_stream.len(), 1);
            assert_eq!(got.per_stream[0].masks, expect.masks, "level {level}");
            assert_eq!(got.total_frames, expect.frames);
        }
    }

    /// Each stream's masks match what that stream would produce alone —
    /// multiplexing affects timing, never output.
    #[test]
    fn streams_are_functionally_independent() {
        let a = scene_frames(1, 6);
        let b = scene_frames(2, 6);
        let mut m = multi(&[a.clone(), b.clone()], OptLevel::F);
        let report = m.process_all(&[a[1..].to_vec(), b[1..].to_vec()]).unwrap();
        for (frames, stream) in [(&a, &report.per_stream[0]), (&b, &report.per_stream[1])] {
            let mut solo = GpuMog::<f64>::new(
                Resolution::TINY,
                MogParams::default(),
                OptLevel::F,
                frames[0].as_slice(),
                GpuConfig::tesla_c2075(),
            )
            .unwrap();
            let expect = solo.process_all(&frames[1..]).unwrap();
            assert_eq!(stream.masks, expect.masks);
        }
        assert_eq!(report.total_frames, 10);
        assert!(report.makespan > 0.0);
        assert!(report.worst_latency() > 0.0);
    }

    #[test]
    fn streams_share_one_device_memory_budget() {
        let frames = scene_frames(3, 2);
        let mut cfg = GpuConfig::tesla_c2075();
        // Enough for roughly one stream's model + buffers only.
        let one = multi(std::slice::from_ref(&frames), OptLevel::F);
        cfg.device_mem_bytes = one.device_allocated() + 512;
        let seeds: Vec<&[u8]> = vec![frames[0].as_slice(); 3];
        let err = MultiGpuMog::<f64>::new(
            Resolution::TINY,
            MogParams::default(),
            OptLevel::F,
            &seeds,
            cfg,
        );
        assert!(
            matches!(err, Err(PipelineError::Memory(_))),
            "over-committing the device must fail"
        );
    }

    #[test]
    fn mismatched_stream_count_rejected() {
        let frames = scene_frames(4, 3);
        let mut m = multi(std::slice::from_ref(&frames), OptLevel::F);
        assert!(matches!(m.process_all(&[]), Err(PipelineError::Config(_))));
        assert!(matches!(
            m.process_all(&[frames[1..].to_vec(), frames[1..].to_vec()]),
            Err(PipelineError::Config(_))
        ));
        assert!(matches!(
            m.process_all(&[Vec::new()]),
            Err(PipelineError::Config(_))
        ));
    }

    /// The embedded serving report agrees with the schedule: same frame
    /// counts, frame-latency histogram percentiles bracketing the exact
    /// per-stream percentiles, and device/site labels set.
    #[test]
    fn serving_report_agrees_with_schedule() {
        let a = scene_frames(6, 8);
        let b = scene_frames(7, 8);
        let mut m = multi(&[a.clone(), b.clone()], OptLevel::F)
            .with_slo(SloConfig {
                deadline_s: 1e-6, // everything violates
                error_budget: 0.01,
            })
            .with_window(0.0);
        let r = m.process_all(&[a[1..].to_vec(), b[1..].to_vec()]).unwrap();
        let serving = &r.serving;
        assert_eq!(serving.device, GpuConfig::tesla_c2075().name);
        assert_eq!(serving.site, "level F");
        assert_eq!(serving.streams.len(), 2);
        for (s, stream) in serving.streams.iter().enumerate() {
            assert_eq!(stream.frames_completed as usize, r.per_stream[s].frames);
            // Offline streams: e2e == sojourn, so every frame violates
            // the 1 µs deadline and the exact p99 of the report's
            // LatencyStats falls inside the histogram's p99 bucket.
            assert_eq!(stream.slo_violations, stream.frames_completed);
            let exact = r.per_stream[s].latency.p99;
            let (lo, hi) = stream.frame_latency.quantile_bounds(0.99);
            assert!(
                exact > lo && exact <= hi,
                "stream {s}: exact p99 {exact} outside ({lo}, {hi}]"
            );
        }
        // Violations in the report equal violation events in the log.
        let event_violations = serving
            .events
            .iter()
            .filter(|e| e.event == mogpu_sim::serving::EventKind::SloViolation)
            .count() as u64;
        assert_eq!(serving.total_violations(), event_violations);
        assert!((serving.makespan_s - r.makespan).abs() < 1e-12);
    }

    /// Device sojourn latency stays bounded as sequences grow — the
    /// regression the bounded buffer cap fixes.
    #[test]
    fn latency_is_bounded_by_the_buffer_cap() {
        let short = scene_frames(5, 5);
        let long = scene_frames(5, 17);
        let mut m_short = multi(std::slice::from_ref(&short), OptLevel::C);
        let mut m_long = multi(std::slice::from_ref(&long), OptLevel::C);
        let r_short = m_short.process_all(&[short[1..].to_vec()]).unwrap();
        let r_long = m_long.process_all(&[long[1..].to_vec()]).unwrap();
        // 4x the frames must not grow worst-case device latency by more
        // than pipeline-fill noise.
        assert!(
            r_long.worst_latency() < 2.0 * r_short.worst_latency(),
            "short {} vs long {}",
            r_short.worst_latency(),
            r_long.worst_latency()
        );
    }
}

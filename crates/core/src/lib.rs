//! # mogpu-core
//!
//! The paper's primary contribution: a step-wise-optimized GPU
//! implementation of Mixture-of-Gaussians background subtraction, realized
//! as kernels for the `mogpu-sim` SIMT simulator.
//!
//! Optimization levels (Tables II and III of the paper):
//!
//! | Level | Kernel | Layout | Transfers | Notes |
//! |-------|--------|--------|-----------|-------|
//! | A | sorted, branchy | AoS | sequential | direct CUDA translation |
//! | B | sorted, branchy | SoA | sequential | memory coalescing |
//! | C | sorted, branchy | SoA | overlapped | + DMA/kernel overlap |
//! | D | no-sort, branchy | SoA | overlapped | divergent-branch elimination |
//! | E | no-sort, predicated | SoA | overlapped | source-level predication |
//! | F | no-sort, predicated, recomputed diff | SoA | overlapped | register reduction |
//! | W | tiled/windowed | SoA + shared | overlapped | frame groups in shared memory |
//!
//! Every kernel is functionally real: it produces the same foreground
//! masks the CPU reference produces (bit-exact through level E; level F
//! deviates on threshold-straddling pixels exactly as the paper's quality
//! study reports), while the simulator derives the architectural metrics
//! the paper plots.
//!
//! Entry point: [`pipeline::GpuMog`].

pub mod device;
pub mod fleet;
pub mod kernels;
pub mod layout;
pub mod levels;
pub mod pipeline;
pub mod profile;
pub mod streams;

pub use device::DeviceReal;
pub use fleet::{FleetPipeline, FleetRunReport};
pub use layout::{DeviceModel, Layout};
pub use levels::OptLevel;
pub use pipeline::{AdaptiveGpuMog, GpuMog, PipelineError, RunReport};
pub use profile::{Bottleneck, LaunchProfile, ProfileMode, ProfileReport};
pub use streams::{MultiGpuMog, MultiStreamReport, StreamRunReport};

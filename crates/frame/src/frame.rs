//! Row-major frame containers.

use crate::resolution::Resolution;
use serde::{Deserialize, Serialize};

/// A single-channel, row-major video frame.
///
/// MoG background subtraction (Algorithm 1 of the paper) operates on scalar
/// pixel values; we use 8-bit luma frames (`Frame<u8>`) for input video and
/// `Frame<u8>` binary masks (0 = background, 255 = foreground) for output.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Frame<T> {
    resolution: Resolution,
    data: Vec<T>,
}

/// A binary foreground mask: 0 = background, 255 = foreground.
pub type Mask = Frame<u8>;

impl<T: Copy + Default> Frame<T> {
    /// Creates a frame filled with `T::default()`.
    pub fn new(resolution: Resolution) -> Self {
        Frame {
            resolution,
            data: vec![T::default(); resolution.pixels()],
        }
    }

    /// Creates a frame filled with `value`.
    pub fn filled(resolution: Resolution, value: T) -> Self {
        Frame {
            resolution,
            data: vec![value; resolution.pixels()],
        }
    }
}

impl<T> Frame<T> {
    /// Wraps an existing pixel buffer.
    ///
    /// # Errors
    /// Returns `Err` if `data.len() != resolution.pixels()`.
    pub fn from_vec(resolution: Resolution, data: Vec<T>) -> Result<Self, FrameError> {
        if data.len() != resolution.pixels() {
            return Err(FrameError::SizeMismatch {
                expected: resolution.pixels(),
                got: data.len(),
            });
        }
        Ok(Frame { resolution, data })
    }

    /// The frame's resolution.
    pub fn resolution(&self) -> Resolution {
        self.resolution
    }

    /// Width in pixels.
    pub fn width(&self) -> usize {
        self.resolution.width
    }

    /// Height in pixels.
    pub fn height(&self) -> usize {
        self.resolution.height
    }

    /// Number of pixels.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True for zero-sized frames.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrow the raw row-major pixel slice.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutably borrow the raw row-major pixel slice.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consumes the frame, returning its buffer.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Pixel at (x, y).
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> &T {
        &self.data[self.resolution.index(x, y)]
    }

    /// Mutable pixel at (x, y).
    #[inline]
    pub fn get_mut(&mut self, x: usize, y: usize) -> &mut T {
        let i = self.resolution.index(x, y);
        &mut self.data[i]
    }

    /// Iterator over rows as slices.
    pub fn rows(&self) -> impl Iterator<Item = &[T]> {
        self.data.chunks_exact(self.resolution.width.max(1))
    }

    /// Maps every pixel through `f`, producing a new frame.
    pub fn map<U>(&self, f: impl FnMut(&T) -> U) -> Frame<U> {
        Frame {
            resolution: self.resolution,
            data: self.data.iter().map(f).collect(),
        }
    }
}

impl Frame<u8> {
    /// Fraction of pixels equal to 255 (useful for mask density checks).
    pub fn fraction_set(&self) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        let set = self.data.iter().filter(|&&p| p == 255).count();
        set as f64 / self.data.len() as f64
    }

    /// Converts the frame to `f64` grayscale in [0, 255].
    pub fn to_f64(&self) -> Frame<f64> {
        self.map(|&p| p as f64)
    }
}

/// Errors constructing frames.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The provided buffer did not match the resolution.
    SizeMismatch {
        /// Pixels required by the resolution.
        expected: usize,
        /// Pixels provided.
        got: usize,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::SizeMismatch { expected, got } => {
                write!(
                    f,
                    "frame buffer size mismatch: expected {expected} pixels, got {got}"
                )
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// An in-memory sequence of frames sharing one resolution.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FrameSequence<T> {
    resolution: Resolution,
    frames: Vec<Frame<T>>,
}

impl<T> FrameSequence<T> {
    /// Creates an empty sequence with the given resolution.
    pub fn new(resolution: Resolution) -> Self {
        FrameSequence {
            resolution,
            frames: Vec::new(),
        }
    }

    /// Appends a frame.
    ///
    /// # Errors
    /// Returns `Err` if the frame's resolution differs from the sequence's.
    pub fn push(&mut self, frame: Frame<T>) -> Result<(), FrameError> {
        if frame.resolution() != self.resolution {
            return Err(FrameError::SizeMismatch {
                expected: self.resolution.pixels(),
                got: frame.len(),
            });
        }
        self.frames.push(frame);
        Ok(())
    }

    /// The shared resolution.
    pub fn resolution(&self) -> Resolution {
        self.resolution
    }

    /// Number of frames.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// True if the sequence holds no frames.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Borrow frame `i`.
    pub fn frame(&self, i: usize) -> &Frame<T> {
        &self.frames[i]
    }

    /// Iterator over frames.
    pub fn iter(&self) -> impl Iterator<Item = &Frame<T>> {
        self.frames.iter()
    }

    /// Consumes the sequence, returning its frames.
    pub fn into_frames(self) -> Vec<Frame<T>> {
        self.frames
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_frame_is_zeroed() {
        let f: Frame<u8> = Frame::new(Resolution::TINY);
        assert_eq!(f.len(), Resolution::TINY.pixels());
        assert!(f.as_slice().iter().all(|&p| p == 0));
    }

    #[test]
    fn from_vec_validates_size() {
        let r = Resolution::new(4, 3);
        assert!(Frame::from_vec(r, vec![0u8; 12]).is_ok());
        let err = Frame::from_vec(r, vec![0u8; 11]).unwrap_err();
        assert_eq!(
            err,
            FrameError::SizeMismatch {
                expected: 12,
                got: 11
            }
        );
    }

    #[test]
    fn get_and_set_round_trip() {
        let mut f: Frame<u8> = Frame::new(Resolution::new(8, 8));
        *f.get_mut(3, 5) = 200;
        assert_eq!(*f.get(3, 5), 200);
        assert_eq!(f.as_slice()[5 * 8 + 3], 200);
    }

    #[test]
    fn rows_iterates_row_major() {
        let r = Resolution::new(3, 2);
        let f = Frame::from_vec(r, vec![1u8, 2, 3, 4, 5, 6]).unwrap();
        let rows: Vec<&[u8]> = f.rows().collect();
        assert_eq!(rows, vec![&[1u8, 2, 3][..], &[4u8, 5, 6][..]]);
    }

    #[test]
    fn fraction_set_counts_255_only() {
        let r = Resolution::new(4, 1);
        let f = Frame::from_vec(r, vec![255u8, 0, 254, 255]).unwrap();
        assert!((f.fraction_set() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn sequence_rejects_mismatched_resolution() {
        let mut seq: FrameSequence<u8> = FrameSequence::new(Resolution::TINY);
        seq.push(Frame::new(Resolution::TINY)).unwrap();
        assert!(seq.push(Frame::new(Resolution::QVGA)).is_err());
        assert_eq!(seq.len(), 1);
    }

    #[test]
    fn map_preserves_resolution() {
        let f: Frame<u8> = Frame::filled(Resolution::new(5, 5), 10);
        let g = f.map(|&p| p as u16 * 2);
        assert_eq!(g.resolution(), f.resolution());
        assert!(g.as_slice().iter().all(|&p| p == 20));
    }
}

//! Deterministic synthetic surveillance scenes.
//!
//! A scene consists of:
//!
//! * a **background process** per pixel — either a stable intensity with
//!   Gaussian sensor noise, or a *bimodal* pixel that flickers between two
//!   intensities (modelling waving foliage, screen flicker, water: the
//!   "multi-modal background scenes" MoG is designed for),
//! * a set of **moving foreground objects** (rectangles / ellipses) that
//!   translate with constant velocity and wrap around frame edges,
//! * per-frame **ground-truth masks** marking object pixels.
//!
//! Generation is fully determined by the seed, resolution and object list,
//! so experiments are reproducible bit-for-bit.

use crate::frame::{Frame, FrameSequence, Mask};
use crate::resolution::Resolution;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// The per-pixel background process kind.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum BackgroundKind {
    /// A stable intensity plus zero-mean Gaussian sensor noise.
    Stable {
        /// Mean intensity in [0, 255].
        level: f64,
        /// Noise standard deviation (grey levels).
        noise_sd: f64,
    },
    /// A two-mode pixel alternating between `level_a` and `level_b`
    /// with probability `p_b` of being in mode B on a given frame.
    Bimodal {
        /// Intensity of mode A.
        level_a: f64,
        /// Intensity of mode B.
        level_b: f64,
        /// Probability of sampling mode B.
        p_b: f64,
        /// Noise standard deviation around the active mode.
        noise_sd: f64,
    },
}

/// The footprint of a moving object.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ObjectShape {
    /// Axis-aligned rectangle of the given size.
    Rect {
        /// Width in pixels.
        w: usize,
        /// Height in pixels.
        h: usize,
    },
    /// Axis-aligned ellipse with the given semi-axes.
    Ellipse {
        /// Horizontal semi-axis in pixels.
        rx: usize,
        /// Vertical semi-axis in pixels.
        ry: usize,
    },
}

/// A foreground object translating across the scene.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MovingObject {
    /// Shape and extent.
    pub shape: ObjectShape,
    /// Initial top-left (rect) / centre (ellipse) x position.
    pub x0: f64,
    /// Initial top-left (rect) / centre (ellipse) y position.
    pub y0: f64,
    /// Horizontal velocity in pixels/frame.
    pub vx: f64,
    /// Vertical velocity in pixels/frame.
    pub vy: f64,
    /// Object intensity in [0, 255].
    pub level: f64,
}

impl MovingObject {
    fn position(&self, frame_idx: usize, res: Resolution) -> (f64, f64) {
        let w = res.width as f64;
        let h = res.height as f64;
        let x = (self.x0 + self.vx * frame_idx as f64).rem_euclid(w);
        let y = (self.y0 + self.vy * frame_idx as f64).rem_euclid(h);
        (x, y)
    }

    /// True if the object covers pixel (px, py) at `frame_idx`.
    fn covers(&self, frame_idx: usize, res: Resolution, px: usize, py: usize) -> bool {
        let (x, y) = self.position(frame_idx, res);
        let (px, py) = (px as f64, py as f64);
        match self.shape {
            ObjectShape::Rect { w, h } => {
                // Wrap-around aware containment on the torus.
                let dx = (px - x).rem_euclid(res.width as f64);
                let dy = (py - y).rem_euclid(res.height as f64);
                dx < w as f64 && dy < h as f64
            }
            ObjectShape::Ellipse { rx, ry } => {
                let half_w = res.width as f64 / 2.0;
                let half_h = res.height as f64 / 2.0;
                let mut dx = px - x;
                let mut dy = py - y;
                // Shortest displacement on the torus.
                if dx > half_w {
                    dx -= res.width as f64;
                } else if dx < -half_w {
                    dx += res.width as f64;
                }
                if dy > half_h {
                    dy -= res.height as f64;
                } else if dy < -half_h {
                    dy += res.height as f64;
                }
                let (rx, ry) = (rx.max(1) as f64, ry.max(1) as f64);
                (dx / rx).powi(2) + (dy / ry).powi(2) <= 1.0
            }
        }
    }
}

/// A global illumination change (lights switching, clouds passing): the
/// whole frame's brightness ramps by `delta` grey levels over `duration`
/// frames starting at `start` — the classic false-positive stressor for
/// background subtraction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IlluminationEvent {
    /// First affected frame.
    pub start: usize,
    /// Frames over which the ramp completes (0 = step change).
    pub duration: usize,
    /// Total brightness change in grey levels (can be negative).
    pub delta: f64,
}

impl IlluminationEvent {
    /// Brightness offset contributed at `frame_idx`.
    pub fn offset_at(&self, frame_idx: usize) -> f64 {
        if frame_idx < self.start {
            0.0
        } else if self.duration == 0 || frame_idx >= self.start + self.duration {
            self.delta
        } else {
            self.delta * (frame_idx - self.start) as f64 / self.duration as f64
        }
    }
}

/// Builder for a [`Scene`].
#[derive(Debug, Clone)]
pub struct SceneBuilder {
    resolution: Resolution,
    seed: u64,
    base_level: f64,
    noise_sd: f64,
    bimodal_fraction: f64,
    bimodal_contrast: f64,
    objects: Vec<MovingObject>,
    illumination: Option<IlluminationEvent>,
    jitter_amplitude: f64,
}

impl SceneBuilder {
    /// Starts a scene at the given resolution with default parameters:
    /// base level 120, noise sd 2.0, 5% bimodal pixels, contrast 60.
    pub fn new(resolution: Resolution) -> Self {
        SceneBuilder {
            resolution,
            seed: 0x5EED_0D15_EA5E_1234,
            base_level: 120.0,
            noise_sd: 2.0,
            bimodal_fraction: 0.05,
            bimodal_contrast: 60.0,
            objects: Vec::new(),
            illumination: None,
            jitter_amplitude: 0.0,
        }
    }

    /// Sets the RNG seed (default is a fixed constant).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the mean background intensity.
    pub fn base_level(mut self, level: f64) -> Self {
        self.base_level = level;
        self
    }

    /// Sets the sensor-noise standard deviation.
    pub fn noise_sd(mut self, sd: f64) -> Self {
        self.noise_sd = sd;
        self
    }

    /// Sets the fraction of pixels given a bimodal (flicker) background
    /// process. Clamped to [0, 1].
    pub fn bimodal_fraction(mut self, frac: f64) -> Self {
        self.bimodal_fraction = frac.clamp(0.0, 1.0);
        self
    }

    /// Sets the intensity gap between the two modes of bimodal pixels.
    pub fn bimodal_contrast(mut self, contrast: f64) -> Self {
        self.bimodal_contrast = contrast;
        self
    }

    /// Adds a moving foreground object.
    pub fn object(mut self, obj: MovingObject) -> Self {
        self.objects.push(obj);
        self
    }

    /// Adds a global illumination event (see [`IlluminationEvent`]).
    pub fn illumination_event(mut self, event: IlluminationEvent) -> Self {
        self.illumination = Some(event);
        self
    }

    /// Adds deterministic camera jitter of up to `amplitude` pixels: the
    /// background sampling position wobbles per frame (unsteady mount),
    /// another classic false-positive source for static-camera models.
    pub fn jitter(mut self, amplitude: f64) -> Self {
        self.jitter_amplitude = amplitude;
        self
    }

    /// Adds `n` default walker objects (rectangles of ~4% frame width)
    /// spread across the scene — a quick way to populate a surveillance
    /// scenario.
    pub fn walkers(mut self, n: usize) -> Self {
        let res = self.resolution;
        let w = (res.width / 25).max(2);
        let h = (res.height / 10).max(2);
        for i in 0..n {
            let phase = i as f64 / n.max(1) as f64;
            self.objects.push(MovingObject {
                shape: ObjectShape::Rect { w, h },
                x0: phase * res.width as f64,
                y0: (0.2 + 0.6 * phase) * res.height as f64,
                vx: if i % 2 == 0 { 1.5 } else { -2.0 },
                vy: if i % 3 == 0 { 0.5 } else { 0.0 },
                level: 220.0 - 40.0 * phase,
            });
        }
        self
    }

    /// Builds the scene, materializing the per-pixel background processes.
    pub fn build(self) -> Scene {
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let pixels = self.resolution.pixels();
        let mut background = Vec::with_capacity(pixels);
        for _ in 0..pixels {
            if rng.gen::<f64>() < self.bimodal_fraction {
                let a = self.base_level + rng.gen_range(-20.0..20.0);
                background.push(BackgroundKind::Bimodal {
                    level_a: a,
                    level_b: (a + self.bimodal_contrast).min(255.0),
                    p_b: rng.gen_range(0.2..0.5),
                    noise_sd: self.noise_sd,
                });
            } else {
                background.push(BackgroundKind::Stable {
                    level: self.base_level + rng.gen_range(-30.0..30.0),
                    noise_sd: self.noise_sd,
                });
            }
        }
        Scene {
            resolution: self.resolution,
            seed: self.seed,
            background,
            objects: self.objects,
            illumination: self.illumination,
            jitter_amplitude: self.jitter_amplitude,
        }
    }
}

/// A fully specified synthetic scene: render any frame index on demand.
#[derive(Debug, Clone)]
pub struct Scene {
    resolution: Resolution,
    seed: u64,
    background: Vec<BackgroundKind>,
    objects: Vec<MovingObject>,
    illumination: Option<IlluminationEvent>,
    jitter_amplitude: f64,
}

impl Scene {
    /// The scene resolution.
    pub fn resolution(&self) -> Resolution {
        self.resolution
    }

    /// The moving objects.
    pub fn objects(&self) -> &[MovingObject] {
        &self.objects
    }

    /// Renders frame `frame_idx` and its ground-truth foreground mask.
    ///
    /// Rendering is deterministic: the per-frame RNG is seeded from
    /// `(scene seed, frame_idx)`.
    pub fn render(&self, frame_idx: usize) -> (Frame<u8>, Mask) {
        let mut rng = ChaCha8Rng::seed_from_u64(
            self.seed ^ (frame_idx as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        let res = self.resolution;
        let mut img = Frame::<u8>::new(res);
        let mut mask = Mask::new(res);
        let img_data = img.as_mut_slice();
        let mask_data = mask.as_mut_slice();
        let illum = self
            .illumination
            .map(|e| e.offset_at(frame_idx))
            .unwrap_or(0.0);
        // Deterministic sub-frame camera wobble (incommensurate phases so
        // the path does not repeat quickly).
        let (jx, jy) = if self.jitter_amplitude > 0.0 {
            let t = frame_idx as f64;
            (
                (self.jitter_amplitude * (t * 1.7).sin()).round() as isize,
                (self.jitter_amplitude * (t * 2.3).cos()).round() as isize,
            )
        } else {
            (0, 0)
        };
        for y in 0..res.height {
            for x in 0..res.width {
                let i = res.index(x, y);
                // Background sample, looked up at the jittered position.
                let bx = (x as isize + jx).clamp(0, res.width as isize - 1) as usize;
                let by = (y as isize + jy).clamp(0, res.height as isize - 1) as usize;
                let bi = res.index(bx, by);
                let bg = match self.background[bi] {
                    BackgroundKind::Stable { level, noise_sd } => {
                        level + gauss(&mut rng) * noise_sd
                    }
                    BackgroundKind::Bimodal {
                        level_a,
                        level_b,
                        p_b,
                        noise_sd,
                    } => {
                        let mode = if rng.gen::<f64>() < p_b {
                            level_b
                        } else {
                            level_a
                        };
                        mode + gauss(&mut rng) * noise_sd
                    }
                };
                let mut value = bg;
                let mut fg = false;
                for obj in &self.objects {
                    if obj.covers(frame_idx, res, x, y) {
                        value = obj.level + gauss(&mut rng) * 1.0;
                        fg = true;
                        break;
                    }
                }
                img_data[i] = (value + illum).clamp(0.0, 255.0).round() as u8;
                mask_data[i] = if fg { 255 } else { 0 };
            }
        }
        (img, mask)
    }

    /// Renders frames `[0, n)` into sequences of images and ground-truth
    /// masks.
    pub fn render_sequence(&self, n: usize) -> (FrameSequence<u8>, FrameSequence<u8>) {
        let mut imgs = FrameSequence::new(self.resolution);
        let mut masks = FrameSequence::new(self.resolution);
        for f in 0..n {
            let (img, mask) = self.render(f);
            imgs.push(img).expect("same resolution");
            masks.push(mask).expect("same resolution");
        }
        (imgs, masks)
    }
}

/// Standard normal sample via Box–Muller (two uniforms; we discard the
/// second output for simplicity — generation speed is not on the critical
/// path of the experiments).
fn gauss<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_scene() -> Scene {
        SceneBuilder::new(Resolution::TINY)
            .seed(42)
            .walkers(2)
            .build()
    }

    #[test]
    fn render_is_deterministic() {
        let s = tiny_scene();
        let (a, ma) = s.render(7);
        let (b, mb) = s.render(7);
        assert_eq!(a, b);
        assert_eq!(ma, mb);
    }

    #[test]
    fn different_frames_differ() {
        let s = tiny_scene();
        let (a, _) = s.render(0);
        let (b, _) = s.render(1);
        assert_ne!(a, b);
    }

    #[test]
    fn mask_marks_object_pixels() {
        let obj = MovingObject {
            shape: ObjectShape::Rect { w: 4, h: 4 },
            x0: 10.0,
            y0: 10.0,
            vx: 0.0,
            vy: 0.0,
            level: 250.0,
        };
        let s = SceneBuilder::new(Resolution::TINY)
            .bimodal_fraction(0.0)
            .object(obj)
            .build();
        let (img, mask) = s.render(0);
        assert_eq!(*mask.get(11, 11), 255);
        assert_eq!(*mask.get(30, 30), 0);
        // Object pixels should be bright (level 250 ± noise).
        assert!(*img.get(11, 11) > 200);
    }

    #[test]
    fn walkers_move_between_frames() {
        let s = tiny_scene();
        let (_, m0) = s.render(0);
        let (_, m50) = s.render(50);
        assert_ne!(m0, m50, "ground-truth masks should differ as objects move");
        assert!(m0.fraction_set() > 0.0);
    }

    #[test]
    fn bimodal_pixels_flicker() {
        let s = SceneBuilder::new(Resolution::new(32, 32))
            .bimodal_fraction(1.0)
            .bimodal_contrast(80.0)
            .noise_sd(0.5)
            .build();
        // Over many frames, a fully bimodal scene must show large per-pixel
        // intensity swings.
        let (f0, _) = s.render(0);
        let mut max_delta = 0i32;
        for t in 1..20 {
            let (ft, _) = s.render(t);
            for (a, b) in f0.as_slice().iter().zip(ft.as_slice()) {
                max_delta = max_delta.max((*a as i32 - *b as i32).abs());
            }
        }
        assert!(
            max_delta > 40,
            "expected flicker, max delta was {max_delta}"
        );
    }

    #[test]
    fn ellipse_covers_centre_not_corner() {
        let obj = MovingObject {
            shape: ObjectShape::Ellipse { rx: 5, ry: 3 },
            x0: 20.0,
            y0: 20.0,
            vx: 0.0,
            vy: 0.0,
            level: 240.0,
        };
        let res = Resolution::TINY;
        assert!(obj.covers(0, res, 20, 20));
        assert!(obj.covers(0, res, 24, 20));
        assert!(!obj.covers(0, res, 26, 20));
        assert!(!obj.covers(0, res, 24, 23));
    }

    #[test]
    fn rect_wraps_around_edges() {
        let obj = MovingObject {
            shape: ObjectShape::Rect { w: 6, h: 6 },
            x0: 62.0, // near right edge of 64-wide frame
            y0: 0.0,
            vx: 0.0,
            vy: 0.0,
            level: 240.0,
        };
        let res = Resolution::TINY;
        assert!(obj.covers(0, res, 63, 2));
        assert!(obj.covers(0, res, 1, 2), "rect should wrap to x=0..4");
        assert!(!obj.covers(0, res, 10, 2));
    }

    #[test]
    fn render_sequence_lengths() {
        let s = tiny_scene();
        let (imgs, masks) = s.render_sequence(5);
        assert_eq!(imgs.len(), 5);
        assert_eq!(masks.len(), 5);
    }
}

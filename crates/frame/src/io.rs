//! Minimal video/image I/O: binary PGM (P5) images and Y4M (YUV4MPEG2,
//! C420/mono luma) sequences.
//!
//! The paper evaluates on surveillance footage we cannot redistribute;
//! these readers/writers let users run the pipeline on their own captures
//! and inspect the synthetic scenes and foreground masks with standard
//! tools (`ffplay`, ImageMagick).

use crate::frame::{Frame, FrameError, FrameSequence};
use crate::resolution::Resolution;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Errors from image/video I/O.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file is not in the expected format.
    Format(String),
    /// Frame/resolution mismatch.
    Frame(FrameError),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "i/o error: {e}"),
            IoError::Format(m) => write!(f, "format error: {m}"),
            IoError::Frame(e) => write!(f, "frame error: {e}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<io::Error> for IoError {
    fn from(e: io::Error) -> Self {
        IoError::Io(e)
    }
}

impl From<FrameError> for IoError {
    fn from(e: FrameError) -> Self {
        IoError::Frame(e)
    }
}

// ---- PGM (P5, 8-bit) ----

/// Writes a frame as a binary PGM (P5).
///
/// # Errors
/// Underlying I/O errors.
pub fn write_pgm<W: Write>(frame: &Frame<u8>, w: W) -> Result<(), IoError> {
    let mut w = BufWriter::new(w);
    write!(w, "P5\n{} {}\n255\n", frame.width(), frame.height())?;
    w.write_all(frame.as_slice())?;
    w.flush()?;
    Ok(())
}

/// Writes a frame as a binary PGM file.
///
/// # Errors
/// Underlying I/O errors.
pub fn save_pgm<P: AsRef<Path>>(frame: &Frame<u8>, path: P) -> Result<(), IoError> {
    write_pgm(frame, std::fs::File::create(path)?)
}

/// Reads a binary PGM (P5, maxval 255).
///
/// # Errors
/// [`IoError::Format`] for non-P5 or non-8-bit files; I/O errors.
pub fn read_pgm<R: Read>(r: R) -> Result<Frame<u8>, IoError> {
    let mut r = BufReader::new(r);
    let mut magic = [0u8; 2];
    r.read_exact(&mut magic)?;
    if &magic != b"P5" {
        return Err(IoError::Format("not a binary PGM (P5) file".into()));
    }
    let width = read_pnm_token(&mut r)?;
    let height = read_pnm_token(&mut r)?;
    let maxval = read_pnm_token(&mut r)?;
    if maxval != 255 {
        return Err(IoError::Format(format!(
            "unsupported maxval {maxval} (want 255)"
        )));
    }
    let res = Resolution::new(width, height);
    let mut data = vec![0u8; res.pixels()];
    r.read_exact(&mut data)?;
    Ok(Frame::from_vec(res, data)?)
}

/// Reads a PGM file.
///
/// # Errors
/// See [`read_pgm`].
pub fn load_pgm<P: AsRef<Path>>(path: P) -> Result<Frame<u8>, IoError> {
    read_pgm(std::fs::File::open(path)?)
}

/// Parses one whitespace-delimited PNM header integer, skipping `#`
/// comments.
fn read_pnm_token<R: BufRead>(r: &mut R) -> Result<usize, IoError> {
    let mut tok = String::new();
    loop {
        let mut byte = [0u8; 1];
        r.read_exact(&mut byte)?;
        let c = byte[0] as char;
        if c == '#' {
            // Skip to end of line.
            let mut junk = String::new();
            r.read_line(&mut junk)?;
            continue;
        }
        if c.is_ascii_whitespace() {
            if tok.is_empty() {
                continue;
            }
            break;
        }
        if !c.is_ascii_digit() {
            return Err(IoError::Format(format!(
                "unexpected character {c:?} in PNM header"
            )));
        }
        tok.push(c);
    }
    tok.parse()
        .map_err(|_| IoError::Format(format!("bad PNM integer {tok:?}")))
}

// ---- Y4M (YUV4MPEG2) ----

/// Writes a luma sequence as YUV4MPEG2 with C420 chroma (chroma planes
/// filled with neutral 128), playable by `ffplay`/`mpv`.
///
/// # Errors
/// Underlying I/O errors; [`IoError::Format`] for odd dimensions (C420
/// requires even width/height) or an empty sequence.
pub fn write_y4m<W: Write>(seq: &FrameSequence<u8>, fps: u32, w: W) -> Result<(), IoError> {
    if seq.is_empty() {
        return Err(IoError::Format("empty sequence".into()));
    }
    let res = seq.resolution();
    if !res.width.is_multiple_of(2) || !res.height.is_multiple_of(2) {
        return Err(IoError::Format(format!(
            "C420 needs even dimensions, got {res}"
        )));
    }
    let mut w = BufWriter::new(w);
    writeln!(
        w,
        "YUV4MPEG2 W{} H{} F{}:1 Ip A1:1 C420",
        res.width, res.height, fps
    )?;
    let chroma = vec![128u8; res.pixels() / 4];
    for frame in seq.iter() {
        w.write_all(b"FRAME\n")?;
        w.write_all(frame.as_slice())?;
        w.write_all(&chroma)?; // U
        w.write_all(&chroma)?; // V
    }
    w.flush()?;
    Ok(())
}

/// Reads a YUV4MPEG2 stream's luma plane (C420 or Cmono).
///
/// # Errors
/// [`IoError::Format`] for unsupported colourspaces or malformed headers.
pub fn read_y4m<R: Read>(r: R) -> Result<FrameSequence<u8>, IoError> {
    let mut r = BufReader::new(r);
    let mut header = String::new();
    r.read_line(&mut header)?;
    if !header.starts_with("YUV4MPEG2") {
        return Err(IoError::Format("not a YUV4MPEG2 stream".into()));
    }
    let mut width = None;
    let mut height = None;
    let mut chroma_div = 4usize; // C420 default
    for tok in header.split_whitespace().skip(1) {
        match tok.chars().next() {
            Some('W') => width = tok[1..].parse().ok(),
            Some('H') => height = tok[1..].parse().ok(),
            Some('C') => {
                chroma_div = match &tok[1..] {
                    c if c.starts_with("420") => 4,
                    "mono" => 0,
                    other => {
                        return Err(IoError::Format(format!("unsupported colourspace C{other}")))
                    }
                };
            }
            _ => {}
        }
    }
    let (width, height) = match (width, height) {
        (Some(w), Some(h)) => (w, h),
        _ => return Err(IoError::Format("missing W/H in Y4M header".into())),
    };
    let res = Resolution::new(width, height);
    let mut seq = FrameSequence::new(res);
    loop {
        let mut frame_line = String::new();
        if r.read_line(&mut frame_line)? == 0 {
            break; // clean EOF
        }
        if !frame_line.starts_with("FRAME") {
            return Err(IoError::Format(format!(
                "expected FRAME, got {frame_line:?}"
            )));
        }
        let mut luma = vec![0u8; res.pixels()];
        r.read_exact(&mut luma)?;
        if let Some(chroma_len) = res.pixels().checked_div(chroma_div) {
            let mut chroma = vec![0u8; chroma_len * 2];
            r.read_exact(&mut chroma)?;
        }
        seq.push(Frame::from_vec(res, luma)?)?;
    }
    Ok(seq)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scene::SceneBuilder;

    fn test_frame() -> Frame<u8> {
        let res = Resolution::new(6, 4);
        let data: Vec<u8> = (0..res.pixels()).map(|i| (i * 11 % 256) as u8).collect();
        Frame::from_vec(res, data).unwrap()
    }

    #[test]
    fn pgm_round_trip() {
        let f = test_frame();
        let mut buf = Vec::new();
        write_pgm(&f, &mut buf).unwrap();
        let g = read_pgm(buf.as_slice()).unwrap();
        assert_eq!(f, g);
    }

    #[test]
    fn pgm_header_format() {
        let f = test_frame();
        let mut buf = Vec::new();
        write_pgm(&f, &mut buf).unwrap();
        assert!(buf.starts_with(b"P5\n6 4\n255\n"));
        assert_eq!(buf.len(), b"P5\n6 4\n255\n".len() + 24);
    }

    #[test]
    fn pgm_with_comments_parses() {
        let data = b"P5\n# a comment line\n2 2\n255\n\x01\x02\x03\x04";
        let f = read_pgm(&data[..]).unwrap();
        assert_eq!(f.as_slice(), &[1, 2, 3, 4]);
    }

    #[test]
    fn pgm_rejects_wrong_magic() {
        let data = b"P6\n2 2\n255\n\x01\x02\x03\x04";
        assert!(matches!(read_pgm(&data[..]), Err(IoError::Format(_))));
    }

    #[test]
    fn pgm_rejects_16_bit() {
        let data = b"P5\n2 2\n65535\n";
        assert!(matches!(read_pgm(&data[..]), Err(IoError::Format(_))));
    }

    #[test]
    fn pgm_truncated_payload_fails() {
        let data = b"P5\n4 4\n255\n\x01\x02";
        assert!(matches!(read_pgm(&data[..]), Err(IoError::Io(_))));
    }

    #[test]
    fn y4m_round_trip() {
        let scene = SceneBuilder::new(Resolution::new(32, 24))
            .seed(4)
            .walkers(1)
            .build();
        let (seq, _) = scene.render_sequence(3);
        let mut buf = Vec::new();
        write_y4m(&seq, 30, &mut buf).unwrap();
        let back = read_y4m(buf.as_slice()).unwrap();
        assert_eq!(back.len(), 3);
        for i in 0..3 {
            assert_eq!(back.frame(i), seq.frame(i));
        }
    }

    #[test]
    fn y4m_header_is_standard() {
        let scene = SceneBuilder::new(Resolution::new(16, 16)).build();
        let (seq, _) = scene.render_sequence(1);
        let mut buf = Vec::new();
        write_y4m(&seq, 60, &mut buf).unwrap();
        let header = String::from_utf8_lossy(&buf[..40]);
        assert!(header.starts_with("YUV4MPEG2 W16 H16 F60:1"), "{header}");
    }

    #[test]
    fn y4m_rejects_odd_dimensions() {
        let seq: FrameSequence<u8> = {
            let mut s = FrameSequence::new(Resolution::new(15, 16));
            s.push(Frame::new(Resolution::new(15, 16))).unwrap();
            s
        };
        let mut buf = Vec::new();
        assert!(matches!(
            write_y4m(&seq, 30, &mut buf),
            Err(IoError::Format(_))
        ));
    }

    #[test]
    fn y4m_rejects_empty_sequence() {
        let seq: FrameSequence<u8> = FrameSequence::new(Resolution::new(16, 16));
        let mut buf = Vec::new();
        assert!(matches!(
            write_y4m(&seq, 30, &mut buf),
            Err(IoError::Format(_))
        ));
    }

    #[test]
    fn y4m_rejects_unknown_colourspace() {
        let data = b"YUV4MPEG2 W2 H2 F30:1 C444\nFRAME\n\0\0\0\0";
        assert!(matches!(read_y4m(&data[..]), Err(IoError::Format(_))));
    }

    #[test]
    fn save_and_load_pgm_file() {
        let dir = std::env::temp_dir().join("mogpu_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("frame.pgm");
        let f = test_frame();
        save_pgm(&f, &path).unwrap();
        let g = load_pgm(&path).unwrap();
        assert_eq!(f, g);
        std::fs::remove_dir_all(&dir).ok();
    }
}

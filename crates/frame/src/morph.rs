//! Binary-mask post-processing: morphology and connected components.
//!
//! The paper's MoG reference ([20], Cheung & Kamath) follows background
//! subtraction with *foreground validation* — cleaning the raw mask and
//! reasoning about connected blobs. This module provides the standard
//! tool set: 3x3 erosion/dilation (and the opening/closing compositions)
//! plus two-pass connected-component labelling with per-blob statistics,
//! used by the examples to turn raw masks into object detections.
//!
//! All operations treat non-zero pixels as foreground and use the
//! 8-connected neighbourhood; borders are handled by clamping (pixels
//! outside the frame count as background).

use crate::frame::{Frame, Mask};

/// 3x3 erosion: a pixel survives only if its entire 8-neighbourhood (and
/// itself) is foreground.
pub fn erode3(mask: &Mask) -> Mask {
    let res = mask.resolution();
    let mut out = Mask::new(res);
    let w = res.width as isize;
    let h = res.height as isize;
    let src = mask.as_slice();
    let dst = out.as_mut_slice();
    for y in 0..h {
        for x in 0..w {
            let mut keep = true;
            'probe: for dy in -1..=1 {
                for dx in -1..=1 {
                    let (nx, ny) = (x + dx, y + dy);
                    if nx < 0 || ny < 0 || nx >= w || ny >= h {
                        keep = false;
                        break 'probe;
                    }
                    if src[(ny * w + nx) as usize] == 0 {
                        keep = false;
                        break 'probe;
                    }
                }
            }
            dst[(y * w + x) as usize] = if keep { 255 } else { 0 };
        }
    }
    out
}

/// 3x3 dilation: a pixel becomes foreground if any of its 8-neighbourhood
/// (or itself) is foreground.
pub fn dilate3(mask: &Mask) -> Mask {
    let res = mask.resolution();
    let mut out = Mask::new(res);
    let w = res.width as isize;
    let h = res.height as isize;
    let src = mask.as_slice();
    let dst = out.as_mut_slice();
    for y in 0..h {
        for x in 0..w {
            let mut hit = false;
            'probe: for dy in -1..=1 {
                for dx in -1..=1 {
                    let (nx, ny) = (x + dx, y + dy);
                    if nx >= 0 && ny >= 0 && nx < w && ny < h && src[(ny * w + nx) as usize] != 0 {
                        hit = true;
                        break 'probe;
                    }
                }
            }
            dst[(y * w + x) as usize] = if hit { 255 } else { 0 };
        }
    }
    out
}

/// Morphological opening (erode then dilate): removes speckle noise
/// smaller than the structuring element while preserving larger blobs.
pub fn open3(mask: &Mask) -> Mask {
    dilate3(&erode3(mask))
}

/// Morphological closing (dilate then erode): fills pinholes and joins
/// nearby fragments.
pub fn close3(mask: &Mask) -> Mask {
    erode3(&dilate3(mask))
}

/// A connected foreground component.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Blob {
    /// Label id (1-based; 0 is background).
    pub label: u32,
    /// Pixel count.
    pub area: usize,
    /// Bounding box, inclusive: (min_x, min_y, max_x, max_y).
    pub bbox: (usize, usize, usize, usize),
    /// Integer centroid (pixel-sum / area).
    pub centroid: (usize, usize),
}

impl Blob {
    /// Bounding-box width.
    pub fn width(&self) -> usize {
        self.bbox.2 - self.bbox.0 + 1
    }

    /// Bounding-box height.
    pub fn height(&self) -> usize {
        self.bbox.3 - self.bbox.1 + 1
    }
}

/// Two-pass 8-connected component labelling with union-find.
///
/// Returns the label image (0 = background, labels are 1-based and dense)
/// and the blob table sorted by descending area.
pub fn connected_components(mask: &Mask) -> (Frame<u32>, Vec<Blob>) {
    let res = mask.resolution();
    let w = res.width;
    let h = res.height;
    let src = mask.as_slice();
    let mut labels = Frame::<u32>::new(res);
    let mut parent: Vec<u32> = vec![0]; // parent[0] = background sentinel

    fn find(parent: &mut [u32], mut x: u32) -> u32 {
        while parent[x as usize] != x {
            let up = parent[parent[x as usize] as usize];
            parent[x as usize] = up;
            x = up;
        }
        x
    }
    fn union(parent: &mut [u32], a: u32, b: u32) {
        let (ra, rb) = (find(parent, a), find(parent, b));
        if ra != rb {
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            parent[hi as usize] = lo;
        }
    }

    // Pass 1: provisional labels from the already-visited half of the
    // 8-neighbourhood (W, NW, N, NE).
    {
        let data = labels.as_mut_slice();
        for y in 0..h {
            for x in 0..w {
                if src[y * w + x] == 0 {
                    continue;
                }
                let mut neighbour = 0u32;
                let mut consider = |lbl: u32, parent: &mut Vec<u32>| {
                    if lbl != 0 {
                        if neighbour == 0 {
                            neighbour = lbl;
                        } else {
                            union(parent, neighbour, lbl);
                        }
                    }
                };
                if x > 0 {
                    consider(data[y * w + x - 1], &mut parent);
                }
                if y > 0 {
                    if x > 0 {
                        consider(data[(y - 1) * w + x - 1], &mut parent);
                    }
                    consider(data[(y - 1) * w + x], &mut parent);
                    if x + 1 < w {
                        consider(data[(y - 1) * w + x + 1], &mut parent);
                    }
                }
                let lbl = if neighbour == 0 {
                    let new = parent.len() as u32;
                    parent.push(new);
                    new
                } else {
                    find(&mut parent, neighbour)
                };
                data[y * w + x] = lbl;
            }
        }
    }

    // Pass 2: resolve to dense root labels and accumulate statistics.
    let mut dense: Vec<u32> = vec![0; parent.len()];
    let mut next_dense = 0u32;
    let mut blobs: Vec<Blob> = Vec::new();
    let mut sums: Vec<(usize, usize)> = Vec::new();
    {
        let data = labels.as_mut_slice();
        for y in 0..h {
            for x in 0..w {
                let raw = data[y * w + x];
                if raw == 0 {
                    continue;
                }
                let root = find(&mut parent, raw);
                if dense[root as usize] == 0 {
                    next_dense += 1;
                    dense[root as usize] = next_dense;
                    blobs.push(Blob {
                        label: next_dense,
                        area: 0,
                        bbox: (x, y, x, y),
                        centroid: (0, 0),
                    });
                    sums.push((0, 0));
                }
                let d = dense[root as usize];
                data[y * w + x] = d;
                let b = &mut blobs[(d - 1) as usize];
                b.area += 1;
                b.bbox.0 = b.bbox.0.min(x);
                b.bbox.1 = b.bbox.1.min(y);
                b.bbox.2 = b.bbox.2.max(x);
                b.bbox.3 = b.bbox.3.max(y);
                let s = &mut sums[(d - 1) as usize];
                s.0 += x;
                s.1 += y;
            }
        }
    }
    for (b, s) in blobs.iter_mut().zip(&sums) {
        b.centroid = (s.0 / b.area, s.1 / b.area);
    }
    blobs.sort_by_key(|b| std::cmp::Reverse(b.area));
    (labels, blobs)
}

/// Removes blobs smaller than `min_area` pixels (in place on a copy).
pub fn remove_small_blobs(mask: &Mask, min_area: usize) -> Mask {
    let (labels, blobs) = connected_components(mask);
    let keep: Vec<bool> = {
        let mut by_label = vec![false; blobs.len() + 1];
        for b in &blobs {
            by_label[b.label as usize] = b.area >= min_area;
        }
        by_label
    };
    let mut out = Mask::new(mask.resolution());
    for (o, &l) in out.as_mut_slice().iter_mut().zip(labels.as_slice()) {
        *o = if l != 0 && keep[l as usize] { 255 } else { 0 };
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resolution::Resolution;

    fn mask_from(rows: &[&str]) -> Mask {
        let h = rows.len();
        let w = rows[0].len();
        let mut data = Vec::with_capacity(w * h);
        for r in rows {
            for c in r.chars() {
                data.push(if c == '#' { 255 } else { 0 });
            }
        }
        Mask::from_vec(Resolution::new(w, h), data).unwrap()
    }

    #[test]
    fn erosion_removes_single_pixels() {
        let m = mask_from(&[".....", ".#...", "...##", "...##", "....."]);
        let e = erode3(&m);
        assert!(e.as_slice().iter().all(|&p| p == 0), "nothing is 3x3-solid");
    }

    #[test]
    fn erosion_keeps_solid_interior() {
        let m = mask_from(&["#####", "#####", "#####", "#####", "#####"]);
        let e = erode3(&m);
        // Interior 3x3 survives; the border (clamped to background) goes.
        assert_eq!(*e.get(2, 2), 255);
        assert_eq!(*e.get(0, 0), 0);
        assert_eq!(e.fraction_set(), 9.0 / 25.0);
    }

    #[test]
    fn dilation_grows_by_one() {
        let m = mask_from(&[".....", ".....", "..#..", ".....", "....."]);
        let d = dilate3(&m);
        assert_eq!(d.fraction_set(), 9.0 / 25.0);
        assert_eq!(*d.get(1, 1), 255);
        assert_eq!(*d.get(4, 4), 0);
    }

    #[test]
    fn opening_removes_speckle_keeps_blobs() {
        let m = mask_from(&["#.......", "...####.", "...####.", "...####.", "#......."]);
        let o = open3(&m);
        assert_eq!(*o.get(0, 0), 0, "speckle removed");
        assert_eq!(*o.get(4, 2), 255, "blob interior kept");
    }

    #[test]
    fn closing_fills_pinholes() {
        let m = mask_from(&["#####", "##.##", "#####"]);
        let c = close3(&m);
        assert_eq!(*c.get(2, 1), 255, "pinhole filled");
    }

    #[test]
    fn components_count_and_stats() {
        let m = mask_from(&["##...#", "##...#", "......", "...##."]);
        let (labels, blobs) = connected_components(&m);
        assert_eq!(blobs.len(), 3);
        // Sorted by area: the 2x2 block first.
        assert_eq!(blobs[0].area, 4);
        assert_eq!(blobs[0].bbox, (0, 0, 1, 1));
        assert_eq!(blobs[0].centroid, (0, 0)); // (0+1+0+1)/4 = 0 (integer)
        let areas: Vec<usize> = blobs.iter().map(|b| b.area).collect();
        assert_eq!(areas, vec![4, 2, 2]);
        // Labels are dense and match the mask support.
        let fg = m.as_slice().iter().filter(|&&p| p != 0).count();
        let labelled = labels.as_slice().iter().filter(|&&l| l != 0).count();
        assert_eq!(fg, labelled);
    }

    #[test]
    fn diagonal_pixels_are_one_component() {
        // 8-connectivity joins diagonals.
        let m = mask_from(&["#..", ".#.", "..#"]);
        let (_, blobs) = connected_components(&m);
        assert_eq!(blobs.len(), 1);
        assert_eq!(blobs[0].area, 3);
    }

    #[test]
    fn u_shape_merges_via_union_find() {
        // The two arms get different provisional labels and must merge at
        // the bottom — the classic union-find case.
        let m = mask_from(&["#.#", "#.#", "###"]);
        let (_, blobs) = connected_components(&m);
        assert_eq!(blobs.len(), 1);
        assert_eq!(blobs[0].area, 7);
    }

    #[test]
    fn remove_small_blobs_filters_by_area() {
        let m = mask_from(&["##....", "##....", "....#."]);
        let cleaned = remove_small_blobs(&m, 3);
        assert_eq!(*cleaned.get(0, 0), 255);
        assert_eq!(*cleaned.get(4, 2), 0);
    }

    #[test]
    fn empty_mask_has_no_blobs() {
        let m = Mask::new(Resolution::new(8, 8));
        let (labels, blobs) = connected_components(&m);
        assert!(blobs.is_empty());
        assert!(labels.as_slice().iter().all(|&l| l == 0));
    }

    #[test]
    fn blob_dimensions() {
        let m = mask_from(&["......", ".####.", ".####.", "......"]);
        let (_, blobs) = connected_components(&m);
        assert_eq!(blobs[0].width(), 4);
        assert_eq!(blobs[0].height(), 2);
        assert_eq!(blobs[0].centroid, (2, 1));
    }
}

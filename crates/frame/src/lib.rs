//! # mogpu-frame
//!
//! Frame containers, resolutions, and synthetic video scene generation for
//! the `mogpu` background-subtraction workspace.
//!
//! The ICPP 2014 paper evaluates on 450 full-HD (1920x1080) surveillance
//! frames. Real surveillance footage is not redistributable, so this crate
//! provides a deterministic synthetic scene generator
//! ([`scene::SceneBuilder`]) that reproduces the *statistics* that matter to
//! Mixture-of-Gaussians background subtraction:
//!
//! * per-pixel background processes (stable, noisy, bimodal "flicker"
//!   pixels such as waving foliage or screen flicker),
//! * moving foreground objects with known ground-truth masks,
//! * sensor noise.
//!
//! All generation is seeded and reproducible.

pub mod frame;
pub mod io;
pub mod morph;
pub mod resolution;
pub mod scene;

pub use frame::{Frame, FrameSequence, Mask};
pub use io::{load_pgm, read_pgm, read_y4m, save_pgm, write_pgm, write_y4m, IoError};
pub use morph::{close3, connected_components, dilate3, erode3, open3, remove_small_blobs, Blob};
pub use resolution::Resolution;
pub use scene::{
    BackgroundKind, IlluminationEvent, MovingObject, ObjectShape, Scene, SceneBuilder,
};

//! Frame resolutions used throughout the workspace.

use serde::{Deserialize, Serialize};

/// A frame resolution in pixels.
///
/// The paper's headline experiments run at [`Resolution::FULL_HD`]
/// (1920x1080, the "full HD 1080p" of the abstract). Tests and quick
/// experiments use the smaller presets; the simulator's analytic timing
/// model is resolution-linear so results extrapolate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Resolution {
    /// Width in pixels.
    pub width: usize,
    /// Height in pixels.
    pub height: usize,
}

impl Resolution {
    /// 1920x1080 — the paper's evaluation resolution.
    pub const FULL_HD: Resolution = Resolution::new(1920, 1080);
    /// 1280x720.
    pub const HD: Resolution = Resolution::new(1280, 720);
    /// 640x480.
    pub const VGA: Resolution = Resolution::new(640, 480);
    /// 320x240.
    pub const QVGA: Resolution = Resolution::new(320, 240);
    /// 160x120 — small preset for unit tests.
    pub const QQVGA: Resolution = Resolution::new(160, 120);
    /// 64x48 — tiny preset for property tests.
    pub const TINY: Resolution = Resolution::new(64, 48);

    /// Creates a resolution. Zero-sized resolutions are permitted (an empty
    /// frame) but rarely useful.
    pub const fn new(width: usize, height: usize) -> Self {
        Resolution { width, height }
    }

    /// Total number of pixels.
    pub const fn pixels(&self) -> usize {
        self.width * self.height
    }

    /// Converts (x, y) to a row-major linear index.
    ///
    /// # Panics
    /// Panics in debug builds if the coordinate is out of bounds.
    #[inline]
    pub fn index(&self, x: usize, y: usize) -> usize {
        debug_assert!(
            x < self.width && y < self.height,
            "({x},{y}) out of {self:?}"
        );
        y * self.width + x
    }
}

impl std::fmt::Display for Resolution {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}x{}", self.width, self.height)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_hd_pixel_count_matches_paper() {
        // The paper processes 1080x1920 frames => ~2 million threads.
        assert_eq!(Resolution::FULL_HD.pixels(), 2_073_600);
    }

    #[test]
    fn index_is_row_major() {
        let r = Resolution::new(10, 4);
        assert_eq!(r.index(0, 0), 0);
        assert_eq!(r.index(9, 0), 9);
        assert_eq!(r.index(0, 1), 10);
        assert_eq!(r.index(3, 2), 23);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Resolution::VGA.to_string(), "640x480");
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn index_out_of_bounds_panics_in_debug() {
        let r = Resolution::new(4, 4);
        let _ = r.index(4, 0);
    }
}

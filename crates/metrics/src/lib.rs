//! # mogpu-metrics
//!
//! Image-quality metrics for the paper's Table IV / Section V-A quality
//! study: a from-scratch implementation of single-scale **SSIM** (Wang et
//! al., 2004) and **MS-SSIM** (Wang, Simoncelli & Bovik, 2003), plus the
//! basic MSE/PSNR and binary-mask accuracy measures used by the examples
//! and tests.
//!
//! The paper compares each GPU optimization level's foreground/background
//! output against the CPU double-precision ground truth with MS-SSIM and
//! reports 99% background similarity and 95-99% foreground similarity
//! across levels.

pub mod basic;
pub mod msssim;
pub mod ssim;

pub use basic::{mask_confusion, mse, psnr, MaskConfusion};
pub use msssim::{ms_ssim, ms_ssim_scales, MS_SSIM_WEIGHTS};
pub use ssim::{ssim, ssim_map, SsimConfig};

//! Multi-Scale Structural Similarity (MS-SSIM), Wang, Simoncelli & Bovik,
//! Asilomar 2003 — the quality metric of the paper's Table IV.
//!
//! The image pair is evaluated at 5 dyadic scales; contrast-structure
//! terms from every scale and the luminance term from the coarsest scale
//! combine as
//!
//! ```text
//! MS-SSIM = l_M^{w_M} * prod_{j=1..M} cs_j^{w_j}
//! ```
//!
//! with the published exponents [`MS_SSIM_WEIGHTS`]. Downsampling is a 2x2
//! box average (the low-pass + decimate of the reference implementation).
//! When the image is too small for all 5 scales, the scale count is
//! reduced and the weights renormalized — necessary because background
//! masks in the test suite are evaluated at reduced resolutions.

use crate::ssim::{ssim_components_f64, SsimConfig};
use mogpu_frame::{Frame, Resolution};

/// The five scale exponents of the MS-SSIM paper.
pub const MS_SSIM_WEIGHTS: [f64; 5] = [0.0448, 0.2856, 0.3001, 0.2363, 0.1333];

/// 2x2 box downsampling (dimensions floor-halved).
fn downsample(f: &Frame<f64>) -> Frame<f64> {
    let w = f.width() / 2;
    let h = f.height() / 2;
    let mut out = Frame::<f64>::new(Resolution::new(w, h));
    for y in 0..h {
        for x in 0..w {
            let s = f.get(2 * x, 2 * y)
                + f.get(2 * x + 1, 2 * y)
                + f.get(2 * x, 2 * y + 1)
                + f.get(2 * x + 1, 2 * y + 1);
            *out.get_mut(x, y) = s / 4.0;
        }
    }
    out
}

/// Number of scales usable for a given resolution (window must fit at the
/// coarsest scale), capped at 5.
pub fn ms_ssim_scales(res: Resolution, cfg: &SsimConfig) -> usize {
    let mut scales = 0usize;
    let mut w = res.width;
    let mut h = res.height;
    while scales < 5 && w >= cfg.window && h >= cfg.window {
        scales += 1;
        w /= 2;
        h /= 2;
    }
    scales
}

/// MS-SSIM of two frames under the default SSIM configuration.
///
/// Returns `None` if even one scale does not fit the image.
///
/// # Panics
/// Panics if the resolutions differ.
pub fn ms_ssim(a: &Frame<u8>, b: &Frame<u8>) -> Option<f64> {
    ms_ssim_with(a, b, &SsimConfig::default())
}

/// MS-SSIM with an explicit SSIM configuration.
pub fn ms_ssim_with(a: &Frame<u8>, b: &Frame<u8>, cfg: &SsimConfig) -> Option<f64> {
    assert_eq!(a.resolution(), b.resolution(), "resolution mismatch");
    let scales = ms_ssim_scales(a.resolution(), cfg);
    if scales == 0 {
        return None;
    }
    let weight_sum: f64 = MS_SSIM_WEIGHTS[..scales].iter().sum();

    let mut fa = a.to_f64();
    let mut fb = b.to_f64();
    let mut result = 1.0f64;
    for (j, &wj) in MS_SSIM_WEIGHTS[..scales].iter().enumerate() {
        let (_, l, cs) = ssim_components_f64(&fa, &fb, cfg)?;
        // Negative structure terms cannot be exponentiated; clamp as the
        // reference implementation does.
        let cs = cs.max(1e-10);
        let exponent = wj / weight_sum;
        if j + 1 == scales {
            let l = l.max(1e-10);
            result *= l.powf(exponent) * cs.powf(exponent);
        } else {
            result *= cs.powf(exponent);
            fa = downsample(&fa);
            fb = downsample(&fb);
        }
    }
    Some(result)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noise_frame(seed: u64, res: Resolution) -> Frame<u8> {
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(99);
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u8
        };
        let data: Vec<u8> = (0..res.pixels()).map(|_| next()).collect();
        Frame::from_vec(res, data).unwrap()
    }

    #[test]
    fn self_similarity_is_one() {
        let f = noise_frame(1, Resolution::QVGA);
        let s = ms_ssim(&f, &f).unwrap();
        assert!((s - 1.0).abs() < 1e-6, "self MS-SSIM = {s}");
    }

    #[test]
    fn qvga_supports_all_five_scales() {
        assert_eq!(ms_ssim_scales(Resolution::QVGA, &SsimConfig::default()), 5);
        assert_eq!(
            ms_ssim_scales(Resolution::FULL_HD, &SsimConfig::default()),
            5
        );
    }

    #[test]
    fn tiny_images_use_fewer_scales() {
        assert_eq!(ms_ssim_scales(Resolution::TINY, &SsimConfig::default()), 3);
        assert_eq!(
            ms_ssim_scales(Resolution::new(8, 8), &SsimConfig::default()),
            0
        );
        let f = Frame::filled(Resolution::new(8, 8), 0u8);
        assert!(ms_ssim(&f, &f).is_none());
    }

    #[test]
    fn independent_noise_scores_low() {
        let a = noise_frame(1, Resolution::QVGA);
        let b = noise_frame(2, Resolution::QVGA);
        let s = ms_ssim(&a, &b).unwrap();
        assert!(s < 0.35, "independent-noise MS-SSIM = {s}");
    }

    #[test]
    fn ranks_degradations_sensibly() {
        let a = noise_frame(3, Resolution::QVGA);
        let mut slightly = a.clone();
        let mut badly = a.clone();
        for (i, v) in slightly.as_mut_slice().iter_mut().enumerate() {
            if i % 31 == 0 {
                *v ^= 0x08;
            }
        }
        for (i, v) in badly.as_mut_slice().iter_mut().enumerate() {
            if i % 3 == 0 {
                *v = v.wrapping_add(97);
            }
        }
        let s_slight = ms_ssim(&a, &slightly).unwrap();
        let s_bad = ms_ssim(&a, &badly).unwrap();
        assert!(s_slight > s_bad, "slight {s_slight} vs bad {s_bad}");
        assert!(s_slight > 0.95);
    }

    #[test]
    fn symmetric() {
        let a = noise_frame(5, Resolution::QVGA);
        let b = noise_frame(6, Resolution::QVGA);
        let ab = ms_ssim(&a, &b).unwrap();
        let ba = ms_ssim(&b, &a).unwrap();
        assert!((ab - ba).abs() < 1e-12);
    }

    #[test]
    fn bounded_by_one() {
        let a = noise_frame(7, Resolution::QVGA);
        let b = noise_frame(8, Resolution::QVGA);
        let s = ms_ssim(&a, &b).unwrap();
        assert!((0.0..=1.0 + 1e-12).contains(&s));
    }

    #[test]
    fn downsample_halves_and_averages() {
        let f = Frame::from_vec(
            Resolution::new(4, 2),
            vec![0.0, 4.0, 8.0, 12.0, 4.0, 8.0, 12.0, 16.0],
        )
        .unwrap();
        let d = downsample(&f);
        assert_eq!(d.resolution(), Resolution::new(2, 1));
        assert_eq!(*d.get(0, 0), 4.0);
        assert_eq!(*d.get(1, 0), 12.0);
    }

    #[test]
    fn binary_mask_comparison_behaves_like_table_iv() {
        // Two nearly identical foreground masks should score in the
        // 95%+ region the paper reports; grossly different ones lower.
        let res = Resolution::QVGA;
        let mut truth = Frame::filled(res, 0u8);
        for y in 100..140 {
            for x in 100..160 {
                *truth.get_mut(x, y) = 255;
            }
        }
        let mut close = truth.clone();
        for y in 100..140 {
            // shift one column
            *close.get_mut(160, y) = 255;
            *close.get_mut(100, y) = 0;
        }
        let mut far = Frame::filled(res, 0u8);
        for y in 30..70 {
            for x in 200..260 {
                *far.get_mut(x, y) = 255;
            }
        }
        let s_close = ms_ssim(&truth, &close).unwrap();
        let s_far = ms_ssim(&truth, &far).unwrap();
        assert!(s_close > 0.95, "close masks scored {s_close}");
        assert!(s_far < s_close);
    }
}

//! Mean-squared error, PSNR, and binary-mask confusion measures.

use mogpu_frame::Frame;

/// Mean-squared error between two equally sized `u8` frames.
///
/// # Panics
/// Panics if the resolutions differ.
pub fn mse(a: &Frame<u8>, b: &Frame<u8>) -> f64 {
    assert_eq!(a.resolution(), b.resolution(), "resolution mismatch");
    if a.is_empty() {
        return 0.0;
    }
    let sum: f64 = a
        .as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(&x, &y)| {
            let d = x as f64 - y as f64;
            d * d
        })
        .sum();
    sum / a.len() as f64
}

/// Peak signal-to-noise ratio in dB (infinite for identical frames).
pub fn psnr(a: &Frame<u8>, b: &Frame<u8>) -> f64 {
    let e = mse(a, b);
    if e == 0.0 {
        f64::INFINITY
    } else {
        10.0 * (255.0 * 255.0 / e).log10()
    }
}

/// Confusion counts of a binary mask against a ground-truth mask
/// (non-zero = positive).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MaskConfusion {
    /// Predicted foreground, truly foreground.
    pub tp: usize,
    /// Predicted foreground, truly background.
    pub fp: usize,
    /// Predicted background, truly foreground.
    pub fn_: usize,
    /// Predicted background, truly background.
    pub tn: usize,
}

impl MaskConfusion {
    /// `tp / (tp + fp)`; 1.0 when nothing was predicted.
    pub fn precision(&self) -> f64 {
        if self.tp + self.fp == 0 {
            1.0
        } else {
            self.tp as f64 / (self.tp + self.fp) as f64
        }
    }

    /// `tp / (tp + fn)`; 1.0 when nothing was there to find.
    pub fn recall(&self) -> f64 {
        if self.tp + self.fn_ == 0 {
            1.0
        } else {
            self.tp as f64 / (self.tp + self.fn_) as f64
        }
    }

    /// Harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Fraction of pixels classified correctly.
    pub fn accuracy(&self) -> f64 {
        let total = self.tp + self.fp + self.fn_ + self.tn;
        if total == 0 {
            1.0
        } else {
            (self.tp + self.tn) as f64 / total as f64
        }
    }

    /// Accumulates another confusion.
    pub fn merge(&mut self, o: &MaskConfusion) {
        self.tp += o.tp;
        self.fp += o.fp;
        self.fn_ += o.fn_;
        self.tn += o.tn;
    }
}

/// Compares `predicted` against `truth` (non-zero pixels are foreground).
///
/// # Panics
/// Panics if the resolutions differ.
pub fn mask_confusion(predicted: &Frame<u8>, truth: &Frame<u8>) -> MaskConfusion {
    assert_eq!(
        predicted.resolution(),
        truth.resolution(),
        "resolution mismatch"
    );
    let mut c = MaskConfusion::default();
    for (&p, &t) in predicted.as_slice().iter().zip(truth.as_slice()) {
        match (p != 0, t != 0) {
            (true, true) => c.tp += 1,
            (true, false) => c.fp += 1,
            (false, true) => c.fn_ += 1,
            (false, false) => c.tn += 1,
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use mogpu_frame::Resolution;

    fn frame(vals: &[u8], w: usize, h: usize) -> Frame<u8> {
        Frame::from_vec(Resolution::new(w, h), vals.to_vec()).unwrap()
    }

    #[test]
    fn identical_frames_have_zero_mse_infinite_psnr() {
        let a = frame(&[1, 2, 3, 4], 2, 2);
        assert_eq!(mse(&a, &a), 0.0);
        assert_eq!(psnr(&a, &a), f64::INFINITY);
    }

    #[test]
    fn mse_of_constant_offset() {
        let a = frame(&[10, 10, 10, 10], 2, 2);
        let b = frame(&[13, 13, 13, 13], 2, 2);
        assert_eq!(mse(&a, &b), 9.0);
        let p = psnr(&a, &b);
        assert!((p - 10.0 * (255.0f64 * 255.0 / 9.0).log10()).abs() < 1e-12);
    }

    #[test]
    fn confusion_counts() {
        let pred = frame(&[255, 255, 0, 0], 2, 2);
        let truth = frame(&[255, 0, 255, 0], 2, 2);
        let c = mask_confusion(&pred, &truth);
        assert_eq!(
            c,
            MaskConfusion {
                tp: 1,
                fp: 1,
                fn_: 1,
                tn: 1
            }
        );
        assert_eq!(c.precision(), 0.5);
        assert_eq!(c.recall(), 0.5);
        assert_eq!(c.f1(), 0.5);
        assert_eq!(c.accuracy(), 0.5);
    }

    #[test]
    fn perfect_prediction() {
        let t = frame(&[255, 0, 255, 0], 2, 2);
        let c = mask_confusion(&t, &t);
        assert_eq!(c.f1(), 1.0);
        assert_eq!(c.accuracy(), 1.0);
    }

    #[test]
    fn empty_prediction_of_empty_truth_is_perfect() {
        let z = frame(&[0, 0, 0, 0], 2, 2);
        let c = mask_confusion(&z, &z);
        assert_eq!(c.precision(), 1.0);
        assert_eq!(c.recall(), 1.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = MaskConfusion {
            tp: 1,
            fp: 2,
            fn_: 3,
            tn: 4,
        };
        a.merge(&MaskConfusion {
            tp: 10,
            fp: 20,
            fn_: 30,
            tn: 40,
        });
        assert_eq!(
            a,
            MaskConfusion {
                tp: 11,
                fp: 22,
                fn_: 33,
                tn: 44
            }
        );
    }

    #[test]
    #[should_panic]
    fn mse_rejects_mismatched_sizes() {
        let a = frame(&[0; 4], 2, 2);
        let b = frame(&[0; 6], 3, 2);
        mse(&a, &b);
    }
}

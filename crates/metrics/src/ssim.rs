//! Single-scale Structural Similarity (SSIM), Wang et al. 2004.
//!
//! The reference formulation: local statistics under an 11x11 Gaussian
//! window (sigma = 1.5), stabilizers `C1 = (0.01 L)^2`, `C2 = (0.03 L)^2`
//! with dynamic range `L = 255`, and 'valid'-mode windowing (borders where
//! the window does not fit are skipped, as in the authors' MATLAB code).

use mogpu_frame::{Frame, Resolution};

/// SSIM configuration; [`SsimConfig::default`] is the reference setting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SsimConfig {
    /// Window side length (odd).
    pub window: usize,
    /// Gaussian sigma of the window.
    pub sigma: f64,
    /// Dynamic range of pixel values.
    pub dynamic_range: f64,
    /// Luminance stabilizer coefficient (0.01 in the paper).
    pub k1: f64,
    /// Contrast stabilizer coefficient (0.03 in the paper).
    pub k2: f64,
}

impl Default for SsimConfig {
    fn default() -> Self {
        SsimConfig {
            window: 11,
            sigma: 1.5,
            dynamic_range: 255.0,
            k1: 0.01,
            k2: 0.03,
        }
    }
}

impl SsimConfig {
    fn c1(&self) -> f64 {
        (self.k1 * self.dynamic_range).powi(2)
    }

    fn c2(&self) -> f64 {
        (self.k2 * self.dynamic_range).powi(2)
    }

    /// The normalized 2-D Gaussian window as a flat `window*window` array.
    pub fn kernel(&self) -> Vec<f64> {
        let n = self.window;
        let half = (n / 2) as isize;
        let mut k = Vec::with_capacity(n * n);
        let two_s2 = 2.0 * self.sigma * self.sigma;
        for y in -half..=half {
            for x in -half..=half {
                k.push((-((x * x + y * y) as f64) / two_s2).exp());
            }
        }
        let sum: f64 = k.iter().sum();
        for v in &mut k {
            *v /= sum;
        }
        k
    }
}

/// Computes mean SSIM plus the per-window luminance*contrast-structure
/// decomposition needed by MS-SSIM.
///
/// Returns `(mean_ssim, mean_luminance_term, mean_cs_term)` over all valid
/// windows, or `None` if the image is smaller than the window.
pub fn ssim_components(a: &Frame<u8>, b: &Frame<u8>, cfg: &SsimConfig) -> Option<(f64, f64, f64)> {
    ssim_components_f64(&a.to_f64(), &b.to_f64(), cfg)
}

pub(crate) fn ssim_components_f64(
    a: &Frame<f64>,
    b: &Frame<f64>,
    cfg: &SsimConfig,
) -> Option<(f64, f64, f64)> {
    assert_eq!(a.resolution(), b.resolution(), "resolution mismatch");
    let w = a.width();
    let h = a.height();
    let n = cfg.window;
    if w < n || h < n {
        return None;
    }
    let kernel = cfg.kernel();
    let (c1, c2) = (cfg.c1(), cfg.c2());
    let pa = a.as_slice();
    let pb = b.as_slice();

    let mut sum_ssim = 0.0;
    let mut sum_l = 0.0;
    let mut sum_cs = 0.0;
    let mut count = 0usize;
    for wy in 0..=(h - n) {
        for wx in 0..=(w - n) {
            let mut mu_a = 0.0;
            let mut mu_b = 0.0;
            let mut aa = 0.0;
            let mut bb = 0.0;
            let mut ab = 0.0;
            let mut ki = 0;
            for dy in 0..n {
                let row = (wy + dy) * w + wx;
                for dx in 0..n {
                    let kv = kernel[ki];
                    ki += 1;
                    let x = pa[row + dx];
                    let y = pb[row + dx];
                    mu_a += kv * x;
                    mu_b += kv * y;
                    aa += kv * x * x;
                    bb += kv * y * y;
                    ab += kv * x * y;
                }
            }
            let var_a = (aa - mu_a * mu_a).max(0.0);
            let var_b = (bb - mu_b * mu_b).max(0.0);
            let cov = ab - mu_a * mu_b;
            let l = (2.0 * mu_a * mu_b + c1) / (mu_a * mu_a + mu_b * mu_b + c1);
            let cs = (2.0 * cov + c2) / (var_a + var_b + c2);
            sum_ssim += l * cs;
            sum_l += l;
            sum_cs += cs;
            count += 1;
        }
    }
    let c = count as f64;
    Some((sum_ssim / c, sum_l / c, sum_cs / c))
}

/// Mean SSIM of two frames under the default configuration.
///
/// # Panics
/// Panics if the resolutions differ or the frames are smaller than the
/// window.
pub fn ssim(a: &Frame<u8>, b: &Frame<u8>) -> f64 {
    ssim_components(a, b, &SsimConfig::default())
        .expect("image smaller than SSIM window")
        .0
}

/// Per-window SSIM map (valid-mode: `(w-window+1) x (h-window+1)`).
///
/// # Panics
/// Panics if the resolutions differ or the frames are smaller than the
/// window.
pub fn ssim_map(a: &Frame<u8>, b: &Frame<u8>, cfg: &SsimConfig) -> Frame<f64> {
    assert_eq!(a.resolution(), b.resolution(), "resolution mismatch");
    let w = a.width();
    let h = a.height();
    let n = cfg.window;
    assert!(w >= n && h >= n, "image smaller than SSIM window");
    let kernel = cfg.kernel();
    let (c1, c2) = (cfg.c1(), cfg.c2());
    let fa = a.to_f64();
    let fb = b.to_f64();
    let pa = fa.as_slice();
    let pb = fb.as_slice();
    let out_res = Resolution::new(w - n + 1, h - n + 1);
    let mut out = Frame::<f64>::new(out_res);
    for wy in 0..out_res.height {
        for wx in 0..out_res.width {
            let mut mu_a = 0.0;
            let mut mu_b = 0.0;
            let mut aa = 0.0;
            let mut bb = 0.0;
            let mut ab = 0.0;
            let mut ki = 0;
            for dy in 0..n {
                let row = (wy + dy) * w + wx;
                for dx in 0..n {
                    let kv = kernel[ki];
                    ki += 1;
                    let x = pa[row + dx];
                    let y = pb[row + dx];
                    mu_a += kv * x;
                    mu_b += kv * y;
                    aa += kv * x * x;
                    bb += kv * y * y;
                    ab += kv * x * y;
                }
            }
            let var_a = (aa - mu_a * mu_a).max(0.0);
            let var_b = (bb - mu_b * mu_b).max(0.0);
            let cov = ab - mu_a * mu_b;
            *out.get_mut(wx, wy) = ((2.0 * mu_a * mu_b + c1) * (2.0 * cov + c2))
                / ((mu_a * mu_a + mu_b * mu_b + c1) * (var_a + var_b + c2));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mogpu_frame::Resolution;

    fn noise_frame(seed: u64, res: Resolution) -> Frame<u8> {
        // Small deterministic LCG so the crate needs no rand dependency
        // in unit tests.
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u8
        };
        let data: Vec<u8> = (0..res.pixels()).map(|_| next()).collect();
        Frame::from_vec(res, data).unwrap()
    }

    #[test]
    fn self_similarity_is_one() {
        let f = noise_frame(1, Resolution::new(32, 24));
        let s = ssim(&f, &f);
        assert!((s - 1.0).abs() < 1e-9, "self SSIM = {s}");
    }

    #[test]
    fn independent_noise_scores_low() {
        let a = noise_frame(1, Resolution::new(48, 48));
        let b = noise_frame(2, Resolution::new(48, 48));
        let s = ssim(&a, &b);
        assert!(s < 0.1, "independent noise SSIM = {s}");
    }

    #[test]
    fn small_perturbation_scores_high() {
        let a = noise_frame(3, Resolution::new(48, 48));
        let mut b = a.clone();
        for (i, v) in b.as_mut_slice().iter_mut().enumerate() {
            if i % 17 == 0 {
                *v = v.saturating_add(2);
            }
        }
        let s = ssim(&a, &b);
        assert!(s > 0.95, "perturbed SSIM = {s}");
    }

    #[test]
    fn symmetric() {
        let a = noise_frame(5, Resolution::new(32, 32));
        let b = noise_frame(6, Resolution::new(32, 32));
        assert!((ssim(&a, &b) - ssim(&b, &a)).abs() < 1e-12);
    }

    #[test]
    fn bounded_in_unit_interval_for_nonneg_cov() {
        let a = noise_frame(7, Resolution::new(32, 32));
        let b = noise_frame(8, Resolution::new(32, 32));
        let s = ssim(&a, &b);
        assert!((-1.0..=1.0 + 1e-12).contains(&s));
    }

    #[test]
    fn constant_images_with_same_value_are_identical() {
        let a = Frame::filled(Resolution::new(16, 16), 128u8);
        let s = ssim(&a, &a.clone());
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn kernel_is_normalized() {
        let k = SsimConfig::default().kernel();
        assert_eq!(k.len(), 121);
        let sum: f64 = k.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        // Centre dominates.
        assert!(k[60] > k[0] * 100.0);
    }

    #[test]
    fn map_has_valid_mode_dimensions() {
        let a = noise_frame(9, Resolution::new(30, 20));
        let m = ssim_map(&a, &a, &SsimConfig::default());
        assert_eq!(m.resolution(), Resolution::new(20, 10));
        assert!(m.as_slice().iter().all(|&v| (v - 1.0).abs() < 1e-9));
    }

    #[test]
    fn too_small_image_returns_none() {
        let a = Frame::filled(Resolution::new(8, 8), 0u8);
        assert!(ssim_components(&a, &a, &SsimConfig::default()).is_none());
    }

    #[test]
    fn mask_like_inputs_behave() {
        // Binary masks (the paper's actual comparison target).
        let res = Resolution::new(32, 32);
        let mut a = Frame::filled(res, 0u8);
        for y in 10..20 {
            for x in 10..20 {
                *a.get_mut(x, y) = 255;
            }
        }
        let mut b = a.clone();
        *b.get_mut(15, 15) = 0; // one-pixel disagreement
        let s = ssim(&a, &b);
        assert!(s > 0.8 && s < 1.0, "mask SSIM = {s}");
    }
}

//! Floating-point abstraction so every MoG variant exists in both the
//! double-precision configuration the paper defaults to and the
//! single-precision configuration of its Section V-C study.

use std::fmt::Debug;
use std::ops::{Add, Div, Mul, Sub};

/// A scalar real type (`f32` or `f64`) with the operations MoG needs.
pub trait Real:
    Copy
    + PartialOrd
    + Debug
    + Send
    + Sync
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + 'static
{
    /// Size in bytes (4 or 8) — drives device memory layout and transfer
    /// sizes.
    const BYTES: usize;
    /// Human-readable name for reports ("float" / "double").
    const NAME: &'static str;

    /// Exact conversion from an 8-bit pixel.
    fn from_u8(p: u8) -> Self;
    /// Conversion from `f64` (parameters).
    fn from_f64(v: f64) -> Self;
    /// Widening conversion to `f64`.
    fn to_f64(self) -> f64;
    /// Absolute value.
    fn abs(self) -> Self;
    /// Square root.
    fn sqrt(self) -> Self;
    /// Elementwise maximum.
    fn max(self, other: Self) -> Self;
    /// Additive identity.
    fn zero() -> Self {
        Self::from_f64(0.0)
    }
    /// Multiplicative identity.
    fn one() -> Self {
        Self::from_f64(1.0)
    }
}

impl Real for f64 {
    const BYTES: usize = 8;
    const NAME: &'static str = "double";

    #[inline]
    fn from_u8(p: u8) -> Self {
        p as f64
    }

    #[inline]
    fn from_f64(v: f64) -> Self {
        v
    }

    #[inline]
    fn to_f64(self) -> f64 {
        self
    }

    #[inline]
    fn abs(self) -> Self {
        f64::abs(self)
    }

    #[inline]
    fn sqrt(self) -> Self {
        f64::sqrt(self)
    }

    #[inline]
    fn max(self, other: Self) -> Self {
        f64::max(self, other)
    }
}

impl Real for f32 {
    const BYTES: usize = 4;
    const NAME: &'static str = "float";

    #[inline]
    fn from_u8(p: u8) -> Self {
        p as f32
    }

    #[inline]
    fn from_f64(v: f64) -> Self {
        v as f32
    }

    #[inline]
    fn to_f64(self) -> f64 {
        self as f64
    }

    #[inline]
    fn abs(self) -> Self {
        f32::abs(self)
    }

    #[inline]
    fn sqrt(self) -> Self {
        f32::sqrt(self)
    }

    #[inline]
    fn max(self, other: Self) -> Self {
        f32::max(self, other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn generic_roundtrip<T: Real>() {
        assert_eq!(T::from_u8(255).to_f64(), 255.0);
        assert_eq!(T::from_f64(-2.0).abs().to_f64(), 2.0);
        assert_eq!(T::from_f64(9.0).sqrt().to_f64(), 3.0);
        assert_eq!(T::zero().to_f64(), 0.0);
        assert_eq!(T::one().to_f64(), 1.0);
        assert_eq!(T::from_f64(1.0).max(T::from_f64(2.0)).to_f64(), 2.0);
    }

    #[test]
    fn f64_ops() {
        generic_roundtrip::<f64>();
        assert_eq!(f64::BYTES, 8);
        assert_eq!(f64::NAME, "double");
    }

    #[test]
    fn f32_ops() {
        generic_roundtrip::<f32>();
        assert_eq!(f32::BYTES, 4);
        assert_eq!(f32::NAME, "float");
    }
}

//! # mogpu-mog
//!
//! The Mixture-of-Gaussians (MoG) background-subtraction algorithm of
//! Stauffer & Grimson as specified by Algorithm 1 of the ICPP 2014 paper,
//! together with the algorithm-level variants the paper derives from it:
//!
//! * **sorted** — the literal serial algorithm: match/update every
//!   component, create a virtual component on total mismatch, rank by
//!   `w/sd`, sort, and scan components in rank order for the background
//!   decision (paper Algorithm 1 + Algorithm 2);
//! * **no-sort** — the GPU-friendly tuning that drops ranking/sorting and
//!   scans all components unconditionally (Algorithm 3, optimization D);
//! * **predicated** — the source-level predicated parameter update
//!   (Algorithm 5, optimization E), arithmetically identical to no-sort;
//! * **register-reduced** — recomputes `diff` instead of keeping it live
//!   (optimization F); because the mean has been updated in between, the
//!   recomputed difference uses the *new* mean, which is the small,
//!   quality-visible deviation the paper reports (97% -> 95% foreground
//!   MS-SSIM).
//!
//! All variants are generic over [`real::Real`] (`f32`/`f64`) and a runtime
//! component count `K` (the paper evaluates 3 and 5).
//!
//! The [`serial`] module gives the single-threaded reference used as the
//! paper's ground truth; [`parallel`] is a rayon multi-threaded CPU
//! implementation standing in for the paper's 8-thread OpenMP build.

pub mod adaptive;
pub mod baseline;
pub mod model;
pub mod parallel;
pub mod params;
pub mod real;
pub mod serial;
pub mod update;

pub use adaptive::{AdaptiveModel, AdaptiveMog};
pub use baseline::{FrameDiff, RunningAverage};
pub use model::HostModel;
pub use params::{MogParams, ResolvedParams};
pub use real::Real;
pub use serial::SerialMog;
pub use update::Variant;

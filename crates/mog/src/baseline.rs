//! History-based baseline background subtractors.
//!
//! The paper's introduction situates MoG among alternatives:
//! "Background subtraction algorithms range from history-based
//! realizations to adaptive learning algorithms... For scenes with static
//! camera position, Mixture of Gaussians (MoG) is most frequently used
//! thanks to its high quality and efficiency." These two classic baselines
//! make that claim testable (see the `baselines_lose_on_multimodal_scenes`
//! integration test and the `surveillance` example):
//!
//! * [`FrameDiff`] — threshold the absolute difference against the
//!   previous frame. Cheap, but only detects *motion boundaries* (an
//!   object that stops, or an interior of uniform brightness, vanishes).
//! * [`RunningAverage`] — exponential moving average per pixel with a
//!   fixed threshold. Handles noise, but a *single* mode: flickering
//!   backgrounds (the multimodal scenes MoG models) become permanent
//!   false positives.

use crate::real::Real;
use mogpu_frame::{Frame, Mask, Resolution};

/// Frame-differencing subtractor: `|frame - previous| > threshold`.
#[derive(Debug, Clone)]
pub struct FrameDiff {
    resolution: Resolution,
    threshold: f64,
    previous: Vec<u8>,
}

impl FrameDiff {
    /// Creates a subtractor seeded with `first_frame`.
    pub fn new(resolution: Resolution, threshold: f64, first_frame: &[u8]) -> Self {
        assert_eq!(
            first_frame.len(),
            resolution.pixels(),
            "seed frame size mismatch"
        );
        FrameDiff {
            resolution,
            threshold,
            previous: first_frame.to_vec(),
        }
    }

    /// Processes one frame.
    ///
    /// # Panics
    /// Panics on resolution mismatch.
    pub fn process(&mut self, frame: &Frame<u8>) -> Mask {
        assert_eq!(
            frame.resolution(),
            self.resolution,
            "frame resolution mismatch"
        );
        let mut mask = Mask::new(self.resolution);
        let out = mask.as_mut_slice();
        for (i, (&p, prev)) in frame
            .as_slice()
            .iter()
            .zip(self.previous.iter_mut())
            .enumerate()
        {
            let d = (p as f64 - *prev as f64).abs();
            out[i] = if d > self.threshold { 255 } else { 0 };
            *prev = p;
        }
        mask
    }

    /// Processes a frame sequence.
    pub fn process_all(&mut self, frames: &[Frame<u8>]) -> Vec<Mask> {
        frames.iter().map(|f| self.process(f)).collect()
    }
}

/// Running-average subtractor: per-pixel exponential moving average with a
/// fixed foreground threshold.
#[derive(Debug, Clone)]
pub struct RunningAverage<T: Real> {
    resolution: Resolution,
    alpha: T,
    threshold: T,
    mean: Vec<T>,
}

impl<T: Real> RunningAverage<T> {
    /// Creates a subtractor seeded with `first_frame`. `alpha` is the
    /// retention factor (close to 1 adapts slowly), `threshold` the
    /// grey-level foreground bound.
    pub fn new(resolution: Resolution, alpha: f64, threshold: f64, first_frame: &[u8]) -> Self {
        assert_eq!(
            first_frame.len(),
            resolution.pixels(),
            "seed frame size mismatch"
        );
        assert!((0.0..1.0).contains(&alpha), "alpha must be in [0, 1)");
        RunningAverage {
            resolution,
            alpha: T::from_f64(alpha),
            threshold: T::from_f64(threshold),
            mean: first_frame.iter().map(|&p| T::from_u8(p)).collect(),
        }
    }

    /// The current background estimate.
    pub fn background(&self) -> &[T] {
        &self.mean
    }

    /// Processes one frame.
    ///
    /// # Panics
    /// Panics on resolution mismatch.
    pub fn process(&mut self, frame: &Frame<u8>) -> Mask {
        assert_eq!(
            frame.resolution(),
            self.resolution,
            "frame resolution mismatch"
        );
        let one_minus = T::one() - self.alpha;
        let mut mask = Mask::new(self.resolution);
        let out = mask.as_mut_slice();
        for (i, (&p, mean)) in frame
            .as_slice()
            .iter()
            .zip(self.mean.iter_mut())
            .enumerate()
        {
            let v = T::from_u8(p);
            let fg = (v - *mean).abs() > self.threshold;
            // Background-gated update: foreground pixels do not pollute
            // the model (the standard "selective update").
            if !fg {
                *mean = self.alpha * *mean + one_minus * v;
            }
            out[i] = if fg { 255 } else { 0 };
        }
        mask
    }

    /// Processes a frame sequence.
    pub fn process_all(&mut self, frames: &[Frame<u8>]) -> Vec<Mask> {
        frames.iter().map(|f| self.process(f)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mogpu_frame::SceneBuilder;

    fn scene_frames(bimodal: f64, n: usize) -> (Vec<Frame<u8>>, Vec<Mask>) {
        let scene = SceneBuilder::new(Resolution::TINY)
            .seed(77)
            .walkers(2)
            .bimodal_fraction(bimodal)
            .build();
        let (f, t) = scene.render_sequence(n);
        (f.into_frames(), t.into_frames())
    }

    fn recall(mask: &Mask, truth: &Mask) -> f64 {
        let mut hit = 0usize;
        let mut total = 0usize;
        for (d, t) in mask.as_slice().iter().zip(truth.as_slice()) {
            if *t == 255 {
                total += 1;
                if *d == 255 {
                    hit += 1;
                }
            }
        }
        hit as f64 / total.max(1) as f64
    }

    fn false_positive_rate(mask: &Mask, truth: &Mask) -> f64 {
        let mut fp = 0usize;
        let mut bg = 0usize;
        for (d, t) in mask.as_slice().iter().zip(truth.as_slice()) {
            if *t == 0 {
                bg += 1;
                if *d == 255 {
                    fp += 1;
                }
            }
        }
        fp as f64 / bg.max(1) as f64
    }

    #[test]
    fn running_average_detects_on_simple_scenes() {
        let (frames, truths) = scene_frames(0.0, 30);
        let mut ra = RunningAverage::<f64>::new(Resolution::TINY, 0.95, 25.0, frames[0].as_slice());
        let masks = ra.process_all(&frames[1..]);
        let r = recall(masks.last().unwrap(), truths.last().unwrap());
        assert!(r > 0.7, "running average recall on simple scene: {r:.2}");
        let fpr = false_positive_rate(masks.last().unwrap(), truths.last().unwrap());
        assert!(fpr < 0.02, "running average FPR on simple scene: {fpr:.4}");
    }

    #[test]
    fn running_average_false_positives_explode_on_multimodal_scenes() {
        // The motivating comparison: 30% flicker pixels are permanent
        // false positives for a single-mode model, while MoG absorbs them.
        let (frames, truths) = scene_frames(0.30, 40);
        let mut ra = RunningAverage::<f64>::new(Resolution::TINY, 0.95, 25.0, frames[0].as_slice());
        let masks = ra.process_all(&frames[1..]);
        let fpr_ra = false_positive_rate(masks.last().unwrap(), truths.last().unwrap());

        let mut mog = crate::serial::SerialMog::<f64>::new(
            Resolution::TINY,
            crate::params::MogParams::default(),
            crate::update::Variant::Sorted,
            frames[0].as_slice(),
        );
        let mog_masks = mog.process_all(&frames[1..]);
        let fpr_mog = false_positive_rate(mog_masks.last().unwrap(), truths.last().unwrap());
        assert!(
            fpr_ra > 5.0 * fpr_mog.max(0.001),
            "multimodal scene must hurt the baseline: RA {fpr_ra:.4} vs MoG {fpr_mog:.4}"
        );
    }

    #[test]
    fn frame_diff_misses_stopped_objects() {
        // A static bright square: frame differencing sees nothing after
        // the first frame, MoG keeps reporting it until absorbed.
        let res = Resolution::TINY;
        let scene = SceneBuilder::new(res)
            .seed(5)
            .bimodal_fraction(0.0)
            .noise_sd(0.5)
            .object(mogpu_frame::MovingObject {
                shape: mogpu_frame::ObjectShape::Rect { w: 8, h: 8 },
                x0: 20.0,
                y0: 20.0,
                vx: 0.0,
                vy: 0.0,
                level: 240.0,
            })
            .build();
        let (frames, truths) = scene.render_sequence(6);
        let frames = frames.into_frames();
        let truths = truths.into_frames();
        let mut fd = FrameDiff::new(res, 25.0, frames[0].as_slice());
        let masks = fd.process_all(&frames[1..]);
        let r = recall(masks.last().unwrap(), truths.last().unwrap());
        assert!(
            r < 0.1,
            "frame diff must miss the static object, recall {r:.2}"
        );
    }

    #[test]
    fn frame_diff_sees_moving_edges() {
        let (frames, truths) = scene_frames(0.0, 10);
        let mut fd = FrameDiff::new(Resolution::TINY, 25.0, frames[0].as_slice());
        let masks = fd.process_all(&frames[1..]);
        // Some overlap with the truth (leading/trailing edges).
        let r = recall(masks.last().unwrap(), truths.last().unwrap());
        assert!(
            r > 0.05,
            "frame diff should catch moving edges, recall {r:.2}"
        );
    }

    #[test]
    fn f32_running_average_works() {
        let (frames, _) = scene_frames(0.0, 5);
        let mut ra = RunningAverage::<f32>::new(Resolution::TINY, 0.9, 25.0, frames[0].as_slice());
        let masks = ra.process_all(&frames[1..]);
        assert_eq!(masks.len(), 4);
    }

    #[test]
    #[should_panic]
    fn invalid_alpha_panics() {
        let _ = RunningAverage::<f64>::new(Resolution::TINY, 1.5, 25.0, &[0; 64 * 48]);
    }
}

//! The canonical per-pixel MoG update/classify routines — the single
//! source of truth for the arithmetic that both the CPU implementations
//! (this crate) and the simulated GPU kernels (`mogpu-core`) perform.
//!
//! Keeping the math in pure slice-level functions lets integration tests
//! assert bit-exact equivalence between the serial reference and the GPU
//! kernels at matching optimization levels.

use crate::params::ResolvedParams;
use crate::real::Real;

/// Maximum supported component count (the paper uses 3 and 5).
pub const MAX_K: usize = 8;

/// Which algorithmic variant of MoG to run (paper optimization levels).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Variant {
    /// Algorithm 1 + 2: branchy update, rank/sort, rank-ordered background
    /// scan with early exit (levels A-C).
    Sorted,
    /// Algorithm 3: branchy update, unconditional scan of all components
    /// (level D).
    NoSort,
    /// Algorithm 5: predicated update, unconditional scan (level E).
    /// Arithmetically identical to [`Variant::NoSort`].
    Predicated,
    /// Level F: predicated update, `diff` recomputed against the *updated*
    /// mean during classification (the register-saving transformation; the
    /// source of the paper's small quality delta).
    RegisterReduced,
}

impl Variant {
    /// All variants, in paper order.
    pub const ALL: [Variant; 4] = [
        Variant::Sorted,
        Variant::NoSort,
        Variant::Predicated,
        Variant::RegisterReduced,
    ];

    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            Variant::Sorted => "sorted",
            Variant::NoSort => "no-sort",
            Variant::Predicated => "predicated",
            Variant::RegisterReduced => "register-reduced",
        }
    }
}

/// Phase 1 of Algorithm 1 (lines 3–15): match components against the
/// pixel, update their parameters, and create a virtual component if
/// nothing matched. Branchy formulation (levels A–D).
///
/// Returns the per-component `diff` values computed against the
/// *pre-update* means (the paper keeps them live in registers until the
/// background scan).
#[inline]
pub fn match_update_branchy<T: Real>(
    p: T,
    w: &mut [T],
    m: &mut [T],
    sd: &mut [T],
    prm: &ResolvedParams<T>,
) -> [T; MAX_K] {
    let k = prm.k;
    let mut diff = [T::zero(); MAX_K];
    let mut matched = false;
    for i in 0..k {
        let d = (m[i] - p).abs();
        diff[i] = d;
        if d < prm.match_threshold {
            // Match: pull weight toward 1, mean/variance toward the pixel.
            w[i] = prm.alpha * w[i] + prm.one_minus_alpha;
            let tmp = prm.one_minus_alpha / w[i];
            m[i] = m[i] + tmp * (p - m[i]);
            let dm = p - m[i];
            let var = sd[i] * sd[i] + tmp * (dm * dm - sd[i] * sd[i]);
            sd[i] = var.max(prm.min_var).sqrt();
            matched = true;
        } else {
            // Non-match: decay the weight.
            w[i] = prm.alpha * w[i];
        }
    }
    if !matched {
        replace_weakest(p, w, m, sd, &mut diff, prm);
    }
    diff
}

/// Phase 1 in the source-level predicated formulation of Algorithm 5
/// (levels E–F). Produces bit-identical parameter updates to
/// [`match_update_branchy`] — the predicate multiplies by exactly 0 or 1 —
/// while executing a single path.
#[inline]
pub fn match_update_predicated<T: Real>(
    p: T,
    w: &mut [T],
    m: &mut [T],
    sd: &mut [T],
    prm: &ResolvedParams<T>,
) -> [T; MAX_K] {
    let k = prm.k;
    let mut diff = [T::zero(); MAX_K];
    let mut matched = false;
    for i in 0..k {
        let d = (m[i] - p).abs();
        diff[i] = d;
        let is_match = d < prm.match_threshold;
        matched |= is_match;
        let mk = if is_match { T::one() } else { T::zero() };
        // w = α·w + match·(1−α): same expression for both outcomes.
        w[i] = prm.alpha * w[i] + mk * prm.one_minus_alpha;
        // Guard the unconditional division: a non-matched component may
        // have weight 0, and `0 * inf = NaN` would leak through the
        // select below. A matched weight is always >= 1−α, so the guard
        // never perturbs the matched (selected) path — updates stay
        // bit-identical to the branchy formulation.
        let tmp = prm.one_minus_alpha / w[i].max(T::from_f64(1e-30));
        let m_new = m[i] + tmp * (p - m[i]);
        m[i] = (T::one() - mk) * m[i] + mk * m_new;
        let dm = p - m[i];
        let var = sd[i] * sd[i] + tmp * (dm * dm - sd[i] * sd[i]);
        let sd_new = var.max(prm.min_var).sqrt();
        sd[i] = (T::one() - mk) * sd[i] + mk * sd_new;
    }
    if !matched {
        replace_weakest(p, w, m, sd, &mut diff, prm);
    }
    diff
}

/// Lines 12–15 of Algorithm 1: replace the smallest-weight component with
/// a virtual component centred on the pixel.
#[inline]
pub fn replace_weakest<T: Real>(
    p: T,
    w: &mut [T],
    m: &mut [T],
    sd: &mut [T],
    diff: &mut [T; MAX_K],
    prm: &ResolvedParams<T>,
) {
    let k = prm.k;
    let mut weakest = 0;
    for i in 1..k {
        if w[i] < w[weakest] {
            weakest = i;
        }
    }
    w[weakest] = prm.initial_weight;
    m[weakest] = p;
    sd[weakest] = prm.initial_sd;
    diff[weakest] = T::zero();
}

/// Phase 2 of Algorithm 1 (lines 16–28): rank components by `w/sd`, sort,
/// and scan in rank order; the pixel is background if a sufficiently
/// weighty, sufficiently close component is found (early exit on the first
/// hit). Returns `true` for **foreground**.
#[inline]
pub fn classify_sorted<T: Real>(
    diff: &[T; MAX_K],
    w: &[T],
    sd: &[T],
    prm: &ResolvedParams<T>,
) -> bool {
    let k = prm.k;
    // Rank = w / sd; insertion-sort component indices by descending rank
    // (K <= 8, so O(K^2) is the natural choice — the paper's serial code
    // does the same).
    let mut order = [0usize; MAX_K];
    let mut rank = [T::zero(); MAX_K];
    for i in 0..k {
        order[i] = i;
        rank[i] = w[i] / sd[i];
    }
    for i in 1..k {
        let mut j = i;
        while j > 0 && rank[order[j - 1]] < rank[order[j]] {
            order.swap(j - 1, j);
            j -= 1;
        }
    }
    for &i in order.iter().take(k) {
        if w[i] >= prm.bg_weight && diff[i] / sd[i] < prm.bg_sigma_ratio {
            return false; // background
        }
    }
    true
}

/// Phase 2 in the no-sort formulation of Algorithm 3 (levels D–E): scan
/// all components unconditionally in index order. The decision ("does any
/// component satisfy the predicate?") is order-independent, so the output
/// is identical to [`classify_sorted`]. Returns `true` for foreground.
#[inline]
pub fn classify_nosort<T: Real>(
    diff: &[T; MAX_K],
    w: &[T],
    sd: &[T],
    prm: &ResolvedParams<T>,
) -> bool {
    let k = prm.k;
    let mut foreground = true;
    for i in 0..k {
        let bg = w[i] >= prm.bg_weight && diff[i] / sd[i] < prm.bg_sigma_ratio;
        foreground &= !bg;
    }
    foreground
}

/// Phase 2 at level F: like [`classify_nosort`] but `diff` is recomputed
/// from the (already updated) mean instead of being kept live in a
/// register — the paper's register-reduction transformation. Returns
/// `true` for foreground.
#[inline]
pub fn classify_regreduced<T: Real>(
    p: T,
    w: &[T],
    m: &[T],
    sd: &[T],
    prm: &ResolvedParams<T>,
) -> bool {
    let k = prm.k;
    let mut foreground = true;
    for i in 0..k {
        let d = (m[i] - p).abs();
        let bg = w[i] >= prm.bg_weight && d / sd[i] < prm.bg_sigma_ratio;
        foreground &= !bg;
    }
    foreground
}

/// Runs one full pixel step (update + classify) for `variant`, mutating
/// the component slices in place. Returns `true` for foreground.
#[inline]
pub fn step_pixel<T: Real>(
    variant: Variant,
    p: T,
    w: &mut [T],
    m: &mut [T],
    sd: &mut [T],
    prm: &ResolvedParams<T>,
) -> bool {
    match variant {
        Variant::Sorted => {
            let diff = match_update_branchy(p, w, m, sd, prm);
            classify_sorted(&diff, w, sd, prm)
        }
        Variant::NoSort => {
            let diff = match_update_branchy(p, w, m, sd, prm);
            classify_nosort(&diff, w, sd, prm)
        }
        Variant::Predicated => {
            let diff = match_update_predicated(p, w, m, sd, prm);
            classify_nosort(&diff, w, sd, prm)
        }
        Variant::RegisterReduced => {
            let _ = match_update_predicated(p, w, m, sd, prm);
            classify_regreduced(p, w, m, sd, prm)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::MogParams;

    fn prm(k: usize) -> ResolvedParams<f64> {
        MogParams::new(k).resolve()
    }

    fn fresh_model(k: usize, level: f64) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
        let mut w = vec![0.0; k];
        w[0] = 1.0;
        (w, vec![level; k], vec![10.0; k])
    }

    #[test]
    fn stable_pixel_becomes_background() {
        let p = prm(3);
        let (mut w, mut m, mut sd) = fresh_model(3, 100.0);
        // Feed the same value repeatedly: must settle as background.
        let mut fg = true;
        for _ in 0..20 {
            fg = step_pixel(Variant::Sorted, 100.0, &mut w, &mut m, &mut sd, &p);
        }
        assert!(!fg);
        assert!((m[0] - 100.0).abs() < 1e-9);
        assert!(w[0] > 0.9);
    }

    #[test]
    fn outlier_pixel_is_foreground() {
        let p = prm(3);
        let (mut w, mut m, mut sd) = fresh_model(3, 100.0);
        for _ in 0..20 {
            step_pixel(Variant::Sorted, 100.0, &mut w, &mut m, &mut sd, &p);
        }
        let fg = step_pixel(Variant::Sorted, 250.0, &mut w, &mut m, &mut sd, &p);
        assert!(fg, "a 150-grey-level jump must be foreground");
    }

    #[test]
    fn mismatch_creates_virtual_component() {
        let p = prm(3);
        let (mut w, mut m, mut sd) = fresh_model(3, 100.0);
        step_pixel(Variant::Sorted, 250.0, &mut w, &mut m, &mut sd, &p);
        // Some component must now be centred at 250 with initial sd/weight.
        let j = m
            .iter()
            .position(|&x| (x - 250.0).abs() < 1e-12)
            .expect("virtual component");
        assert_eq!(sd[j], 30.0);
        assert_eq!(w[j], 0.05);
    }

    #[test]
    fn persistent_new_mode_is_absorbed_into_background() {
        // A bimodal pixel: after a new mode persists, it becomes
        // background — the adaptive property motivating MoG.
        let p = prm(3);
        let (mut w, mut m, mut sd) = fresh_model(3, 100.0);
        for _ in 0..30 {
            step_pixel(Variant::Sorted, 100.0, &mut w, &mut m, &mut sd, &p);
        }
        let mut last = true;
        for _ in 0..60 {
            last = step_pixel(Variant::Sorted, 180.0, &mut w, &mut m, &mut sd, &p);
        }
        assert!(!last, "persistent mode must be absorbed (weights: {w:?})");
    }

    #[test]
    fn predicated_update_is_bit_identical_to_branchy() {
        let p = prm(5);
        let pixels = [100.0, 103.0, 250.0, 99.0, 40.0, 41.0, 100.0, 180.0];
        let (mut w1, mut m1, mut sd1) = fresh_model(5, 100.0);
        let (mut w2, mut m2, mut sd2) = fresh_model(5, 100.0);
        for &px in &pixels {
            let d1 = match_update_branchy(px, &mut w1, &mut m1, &mut sd1, &p);
            let d2 = match_update_predicated(px, &mut w2, &mut m2, &mut sd2, &p);
            assert_eq!(d1, d2);
            assert_eq!(w1, w2);
            assert_eq!(m1, m2);
            assert_eq!(sd1, sd2);
        }
    }

    #[test]
    fn nosort_decision_equals_sorted_decision() {
        // The background predicate is order-independent, so dropping the
        // sort cannot change the decision.
        let p = prm(3);
        let (mut w1, mut m1, mut sd1) = fresh_model(3, 100.0);
        let (mut w2, mut m2, mut sd2) = fresh_model(3, 100.0);
        let pixels = [100.0, 120.0, 250.0, 100.0, 97.0, 210.0, 211.0, 100.0];
        for &px in &pixels {
            let a = step_pixel(Variant::Sorted, px, &mut w1, &mut m1, &mut sd1, &p);
            let b = step_pixel(Variant::NoSort, px, &mut w2, &mut m2, &mut sd2, &p);
            assert_eq!(a, b, "decision diverged at pixel {px}");
        }
    }

    #[test]
    fn register_reduced_close_but_not_identical() {
        // Level F recomputes diff against the updated mean: decisions can
        // differ near the threshold but the steady-state behaviour holds.
        let p = prm(3);
        let (mut w, mut m, mut sd) = fresh_model(3, 100.0);
        let mut fg = true;
        for _ in 0..20 {
            fg = step_pixel(Variant::RegisterReduced, 100.0, &mut w, &mut m, &mut sd, &p);
        }
        assert!(!fg);
        assert!(step_pixel(
            Variant::RegisterReduced,
            250.0,
            &mut w,
            &mut m,
            &mut sd,
            &p
        ));
    }

    #[test]
    fn sd_never_collapses_below_floor() {
        let p = prm(3);
        let (mut w, mut m, mut sd) = fresh_model(3, 100.0);
        for _ in 0..500 {
            step_pixel(Variant::Sorted, 100.0, &mut w, &mut m, &mut sd, &p);
        }
        for &s in &sd[..3] {
            assert!(s >= 4.0 - 1e-12, "sd {s} fell below the floor");
        }
    }

    #[test]
    fn weights_stay_in_unit_interval() {
        let p = prm(3);
        let (mut w, mut m, mut sd) = fresh_model(3, 100.0);
        for t in 0..300 {
            let px = if t % 7 == 0 {
                250.0
            } else {
                100.0 + (t % 5) as f64
            };
            step_pixel(Variant::Sorted, px, &mut w, &mut m, &mut sd, &p);
            for &x in &w[..3] {
                assert!((0.0..=1.0 + 1e-12).contains(&x), "weight {x} out of range");
            }
        }
    }

    #[test]
    fn classify_sorted_prefers_high_rank_first() {
        // Construct a state where only the low-rank component is close:
        // the sorted scan must still find it (scan covers all K).
        let p = prm(2);
        let w = vec![0.9, 0.25];
        let sd = vec![5.0, 10.0];
        let diff = {
            let mut d = [0.0; MAX_K];
            d[0] = 50.0; // far
            d[1] = 1.0; // close
            d
        };
        assert!(!classify_sorted(&diff, &w, &sd, &p));
        assert!(!classify_nosort(&diff, &w, &sd, &p));
    }

    #[test]
    fn low_weight_component_cannot_be_background() {
        let p = prm(2);
        let w = vec![0.05, 0.1]; // all below bg_weight = 0.2
        let sd = vec![5.0, 5.0];
        let diff = [0.0; MAX_K];
        assert!(classify_sorted(&diff, &w, &sd, &p));
        assert!(classify_nosort(&diff, &w, &sd, &p));
    }

    #[test]
    fn f32_variant_behaves() {
        let p: ResolvedParams<f32> = MogParams::new(3).resolve();
        let mut w = vec![0.0f32; 3];
        w[0] = 1.0;
        let mut m = vec![100.0f32; 3];
        let mut sd = vec![10.0f32; 3];
        let mut fg = true;
        for _ in 0..20 {
            fg = step_pixel(Variant::Predicated, 100.0f32, &mut w, &mut m, &mut sd, &p);
        }
        assert!(!fg);
        assert!(step_pixel(
            Variant::Predicated,
            250.0f32,
            &mut w,
            &mut m,
            &mut sd,
            &p
        ));
    }
}

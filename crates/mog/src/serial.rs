//! Single-threaded reference MoG — the paper's CPU baseline and the
//! ground truth for every quality comparison (Table IV).

use crate::model::HostModel;
use crate::params::{MogParams, ResolvedParams};
use crate::real::Real;
use crate::update::{step_pixel, Variant};
use mogpu_frame::{Frame, Mask, Resolution};

/// A stateful serial background subtractor.
///
/// ```
/// use mogpu_mog::{MogParams, SerialMog, Variant};
/// use mogpu_frame::{Resolution, SceneBuilder};
///
/// let scene = SceneBuilder::new(Resolution::TINY).walkers(1).build();
/// let (first, _) = scene.render(0);
/// let mut mog = SerialMog::<f64>::new(Resolution::TINY, MogParams::default(),
///                                     Variant::Sorted, first.as_slice());
/// let (frame, _truth) = scene.render(1);
/// let mask = mog.process(&frame);
/// assert_eq!(mask.resolution(), Resolution::TINY);
/// ```
#[derive(Debug, Clone)]
pub struct SerialMog<T: Real> {
    resolution: Resolution,
    params: MogParams,
    resolved: ResolvedParams<T>,
    variant: Variant,
    model: HostModel<T>,
}

impl<T: Real> SerialMog<T> {
    /// Creates a subtractor seeded from `first_frame` (length must equal
    /// the resolution's pixel count).
    pub fn new(
        resolution: Resolution,
        params: MogParams,
        variant: Variant,
        first_frame: &[u8],
    ) -> Self {
        params.validate().expect("invalid MoG parameters");
        let model = HostModel::init(resolution.pixels(), params.k, &params, first_frame);
        SerialMog {
            resolution,
            params,
            resolved: params.resolve(),
            variant,
            model,
        }
    }

    /// The active variant.
    pub fn variant(&self) -> Variant {
        self.variant
    }

    /// The configuration.
    pub fn params(&self) -> &MogParams {
        &self.params
    }

    /// Read access to the mixture model (for tests and device upload).
    pub fn model(&self) -> &HostModel<T> {
        &self.model
    }

    /// Processes one frame, updating the model and returning the
    /// foreground mask.
    ///
    /// # Panics
    /// Panics if the frame resolution differs from the subtractor's.
    pub fn process(&mut self, frame: &Frame<u8>) -> Mask {
        assert_eq!(
            frame.resolution(),
            self.resolution,
            "frame resolution mismatch"
        );
        let mut mask = Mask::new(self.resolution);
        let data = frame.as_slice();
        let out = mask.as_mut_slice();
        for p in 0..data.len() {
            let (w, m, sd) = self.model.pixel_mut(p);
            let fg = step_pixel(self.variant, T::from_u8(data[p]), w, m, sd, &self.resolved);
            out[p] = if fg { 255 } else { 0 };
        }
        mask
    }

    /// Processes a sequence of frames, returning the masks.
    pub fn process_all(&mut self, frames: &[Frame<u8>]) -> Vec<Mask> {
        frames.iter().map(|f| self.process(f)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mogpu_frame::SceneBuilder;

    fn scene_frames(n: usize) -> (Vec<Frame<u8>>, Vec<Mask>) {
        let scene = SceneBuilder::new(Resolution::TINY)
            .seed(7)
            .walkers(2)
            .build();
        let (f, m) = scene.render_sequence(n);
        (f.into_frames(), m.into_frames())
    }

    #[test]
    fn detects_moving_objects_after_warmup() {
        let (frames, truths) = scene_frames(40);
        let mut mog = SerialMog::<f64>::new(
            Resolution::TINY,
            MogParams::default(),
            Variant::Sorted,
            frames[0].as_slice(),
        );
        let masks = mog.process_all(&frames[1..]);
        // After warm-up, foreground density should be near the ground
        // truth density (objects cover a few percent of the frame).
        let last = masks.last().unwrap();
        let truth = truths.last().unwrap();
        let detected = last.fraction_set();
        let actual = truth.fraction_set();
        assert!(actual > 0.0);
        assert!(
            (detected - actual).abs() < 0.05,
            "detected {detected:.3} vs truth {actual:.3}"
        );
        // Recall: most true-foreground pixels flagged.
        let mut hit = 0usize;
        let mut total = 0usize;
        for (d, t) in last.as_slice().iter().zip(truth.as_slice()) {
            if *t == 255 {
                total += 1;
                if *d == 255 {
                    hit += 1;
                }
            }
        }
        assert!(hit as f64 / total as f64 > 0.7, "recall {hit}/{total}");
    }

    #[test]
    fn static_scene_converges_to_all_background() {
        let scene = SceneBuilder::new(Resolution::TINY)
            .seed(3)
            .noise_sd(1.0)
            .build();
        let (frames, _) = scene.render_sequence(30);
        let frames = frames.into_frames();
        let mut mog = SerialMog::<f64>::new(
            Resolution::TINY,
            MogParams::default(),
            Variant::Sorted,
            frames[0].as_slice(),
        );
        let masks = mog.process_all(&frames[1..]);
        let fg = masks.last().unwrap().fraction_set();
        assert!(fg < 0.02, "static scene foreground fraction {fg}");
    }

    #[test]
    fn model_invariants_hold_through_processing() {
        let (frames, _) = scene_frames(25);
        for variant in Variant::ALL {
            let mut mog = SerialMog::<f64>::new(
                Resolution::TINY,
                MogParams::default(),
                variant,
                frames[0].as_slice(),
            );
            mog.process_all(&frames[1..]);
            mog.model()
                .check_invariants()
                .unwrap_or_else(|e| panic!("{variant:?}: {e}"));
        }
    }

    #[test]
    fn sorted_and_nosort_masks_are_identical() {
        let (frames, _) = scene_frames(20);
        let mut a = SerialMog::<f64>::new(
            Resolution::TINY,
            MogParams::default(),
            Variant::Sorted,
            frames[0].as_slice(),
        );
        let mut b = SerialMog::<f64>::new(
            Resolution::TINY,
            MogParams::default(),
            Variant::NoSort,
            frames[0].as_slice(),
        );
        for f in &frames[1..] {
            assert_eq!(a.process(f), b.process(f));
        }
    }

    #[test]
    fn predicated_masks_match_nosort_exactly() {
        let (frames, _) = scene_frames(20);
        let mut a = SerialMog::<f64>::new(
            Resolution::TINY,
            MogParams::default(),
            Variant::NoSort,
            frames[0].as_slice(),
        );
        let mut b = SerialMog::<f64>::new(
            Resolution::TINY,
            MogParams::default(),
            Variant::Predicated,
            frames[0].as_slice(),
        );
        for f in &frames[1..] {
            assert_eq!(a.process(f), b.process(f));
        }
    }

    #[test]
    fn register_reduced_masks_are_nearly_identical() {
        let (frames, _) = scene_frames(30);
        let mut a = SerialMog::<f64>::new(
            Resolution::TINY,
            MogParams::default(),
            Variant::Predicated,
            frames[0].as_slice(),
        );
        let mut b = SerialMog::<f64>::new(
            Resolution::TINY,
            MogParams::default(),
            Variant::RegisterReduced,
            frames[0].as_slice(),
        );
        let mut differing = 0usize;
        let mut total = 0usize;
        for f in &frames[1..] {
            let ma = a.process(f);
            let mb = b.process(f);
            total += ma.len();
            differing += ma
                .as_slice()
                .iter()
                .zip(mb.as_slice())
                .filter(|(x, y)| x != y)
                .count();
        }
        let rate = differing as f64 / total as f64;
        assert!(rate < 0.02, "register-reduced deviation rate {rate}");
    }

    #[test]
    fn five_gaussian_configuration_works() {
        let (frames, _) = scene_frames(15);
        let mut mog = SerialMog::<f64>::new(
            Resolution::TINY,
            MogParams::new(5),
            Variant::Sorted,
            frames[0].as_slice(),
        );
        let masks = mog.process_all(&frames[1..]);
        assert_eq!(masks.len(), 14);
        mog.model().check_invariants().unwrap();
    }

    #[test]
    #[should_panic]
    fn wrong_resolution_panics() {
        let (frames, _) = scene_frames(2);
        let mut mog = SerialMog::<f64>::new(
            Resolution::TINY,
            MogParams::default(),
            Variant::Sorted,
            frames[0].as_slice(),
        );
        let wrong: Frame<u8> = Frame::new(Resolution::QVGA);
        mog.process(&wrong);
    }
}

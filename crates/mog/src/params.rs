//! MoG tuning parameters.
//!
//! A note on the paper's thresholds: Algorithm 1 uses `Γ1` both as an
//! absolute grey-level bound on the match test (line 5, `diff[k] < Γ1`)
//! and as a ratio bound on the background test (line 24,
//! `diff[k]/sd_k < Γ1`). A single constant cannot sensibly play both
//! roles, so this implementation splits it into [`MogParams::match_threshold`]
//! (grey levels) and [`MogParams::bg_sigma_ratio`] (standard deviations),
//! which is also how the underlying Stauffer–Grimson formulation reads.

use crate::real::Real;
use serde::{Deserialize, Serialize};

/// User-facing MoG configuration (always `f64`; resolve to the working
/// precision with [`MogParams::resolve`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MogParams {
    /// Number of Gaussian components per pixel (the paper evaluates 3
    /// and 5).
    pub k: usize,
    /// Weight retention factor `α` of Algorithm 4/5: a matched component's
    /// weight becomes `α·w + (1−α)`, an unmatched one `α·w`. Values close
    /// to 1 adapt slowly.
    pub alpha: f64,
    /// Grey-level match threshold (paper line 5's `Γ1`).
    pub match_threshold: f64,
    /// Minimum weight for a component to be considered background (paper
    /// line 24's `Γ2`).
    pub bg_weight: f64,
    /// Background closeness bound in standard deviations (paper line 24's
    /// `Γ1` in its ratio role).
    pub bg_sigma_ratio: f64,
    /// Weight assigned to a freshly created virtual component.
    pub initial_weight: f64,
    /// Standard deviation assigned to a freshly created virtual component.
    pub initial_sd: f64,
    /// Floor on the standard deviation, preventing degenerate components.
    pub min_sd: f64,
}

impl MogParams {
    /// Paper-flavoured defaults: 3 components, slow adaptation.
    pub fn new(k: usize) -> Self {
        MogParams {
            k,
            alpha: 0.95,
            match_threshold: 20.0,
            bg_weight: 0.2,
            bg_sigma_ratio: 2.5,
            initial_weight: 0.05,
            initial_sd: 30.0,
            min_sd: 4.0,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.k == 0 || self.k > 8 {
            return Err(format!("k = {} must be in 1..=8", self.k));
        }
        if !(0.0..1.0).contains(&self.alpha) {
            return Err(format!("alpha = {} must be in [0, 1)", self.alpha));
        }
        if self.match_threshold <= 0.0 {
            return Err("match_threshold must be positive".into());
        }
        if self.initial_sd < self.min_sd {
            return Err("initial_sd must be >= min_sd".into());
        }
        if self.min_sd <= 0.0 {
            return Err("min_sd must be positive".into());
        }
        if !(0.0..=1.0).contains(&self.bg_weight) {
            return Err(format!("bg_weight = {} must be in [0, 1]", self.bg_weight));
        }
        Ok(())
    }

    /// Converts to the working precision, pre-computing derived constants.
    pub fn resolve<T: Real>(&self) -> ResolvedParams<T> {
        ResolvedParams {
            k: self.k,
            alpha: T::from_f64(self.alpha),
            one_minus_alpha: T::from_f64(1.0 - self.alpha),
            match_threshold: T::from_f64(self.match_threshold),
            bg_weight: T::from_f64(self.bg_weight),
            bg_sigma_ratio: T::from_f64(self.bg_sigma_ratio),
            initial_weight: T::from_f64(self.initial_weight),
            initial_sd: T::from_f64(self.initial_sd),
            min_var: T::from_f64(self.min_sd * self.min_sd),
        }
    }
}

impl Default for MogParams {
    fn default() -> Self {
        MogParams::new(3)
    }
}

/// [`MogParams`] resolved to working precision `T`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResolvedParams<T: Real> {
    /// Component count.
    pub k: usize,
    /// Weight retention factor.
    pub alpha: T,
    /// `1 − α`, precomputed.
    pub one_minus_alpha: T,
    /// Grey-level match threshold.
    pub match_threshold: T,
    /// Background weight threshold `Γ2`.
    pub bg_weight: T,
    /// Background sigma-ratio threshold.
    pub bg_sigma_ratio: T,
    /// Virtual-component weight.
    pub initial_weight: T,
    /// Virtual-component standard deviation.
    pub initial_sd: T,
    /// Variance floor (`min_sd²`).
    pub min_var: T,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        assert!(MogParams::default().validate().is_ok());
        assert!(MogParams::new(5).validate().is_ok());
    }

    #[test]
    fn invalid_k_rejected() {
        assert!(MogParams {
            k: 0,
            ..MogParams::default()
        }
        .validate()
        .is_err());
        assert!(MogParams {
            k: 9,
            ..MogParams::default()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn invalid_alpha_rejected() {
        assert!(MogParams {
            alpha: 1.0,
            ..MogParams::default()
        }
        .validate()
        .is_err());
        assert!(MogParams {
            alpha: -0.1,
            ..MogParams::default()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn sd_constraints() {
        // initial_sd below the min_sd floor of 4.
        assert!(MogParams {
            initial_sd: 1.0,
            ..MogParams::default()
        }
        .validate()
        .is_err());
        assert!(MogParams {
            min_sd: 0.0,
            ..MogParams::default()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn resolve_precomputes() {
        let p = MogParams::default();
        let r: ResolvedParams<f32> = p.resolve();
        assert!((r.one_minus_alpha.to_f64() - 0.05).abs() < 1e-6);
        assert!((r.min_var.to_f64() - 16.0).abs() < 1e-6);
        let rr: ResolvedParams<f64> = p.resolve();
        assert_eq!(rr.alpha, 0.95);
    }
}

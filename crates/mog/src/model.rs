//! Host-side storage of per-pixel Gaussian mixtures.

use crate::params::MogParams;
use crate::real::Real;

/// All pixels' Gaussian components, pixel-major ("array of structures"):
/// component `k` of pixel `p` lives at index `p * K + k`.
///
/// This is the natural CPU layout (and the layout the paper's *base* GPU
/// implementation inherits, with its catastrophic coalescing behaviour —
/// see `mogpu-core::layout` for the device-side alternatives).
#[derive(Debug, Clone, PartialEq)]
pub struct HostModel<T: Real> {
    k: usize,
    pixels: usize,
    /// Component weights, `pixels * k` entries.
    pub w: Vec<T>,
    /// Component means.
    pub m: Vec<T>,
    /// Component standard deviations.
    pub sd: Vec<T>,
}

impl<T: Real> HostModel<T> {
    /// Creates a model for `pixels` pixels, seeding every pixel's first
    /// component from `first_frame` (weight 1, initial sd) and leaving the
    /// rest empty (weight 0).
    pub fn init(pixels: usize, k: usize, params: &MogParams, first_frame: &[u8]) -> Self {
        assert_eq!(first_frame.len(), pixels, "seed frame size mismatch");
        let n = pixels * k;
        let mut w = vec![T::zero(); n];
        let mut m = vec![T::zero(); n];
        let sd = vec![T::from_f64(params.initial_sd); n];
        for p in 0..pixels {
            let v = T::from_u8(first_frame[p]);
            w[p * k] = T::one();
            for i in 0..k {
                m[p * k + i] = v;
            }
        }
        HostModel {
            k,
            pixels,
            w,
            m,
            sd,
        }
    }

    /// Component count per pixel.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Pixel count.
    pub fn pixels(&self) -> usize {
        self.pixels
    }

    /// Mutable component slices `(w, m, sd)` for pixel `p`.
    pub fn pixel_mut(&mut self, p: usize) -> (&mut [T], &mut [T], &mut [T]) {
        let r = p * self.k..(p + 1) * self.k;
        (
            &mut self.w[r.clone()],
            &mut self.m[r.clone()],
            &mut self.sd[r],
        )
    }

    /// Component slices `(w, m, sd)` for pixel `p`.
    pub fn pixel(&self, p: usize) -> (&[T], &[T], &[T]) {
        let r = p * self.k..(p + 1) * self.k;
        (&self.w[r.clone()], &self.m[r.clone()], &self.sd[r])
    }

    /// Checks the model invariants (weights in [0, 1+ε], sd above zero) —
    /// used by tests and debug assertions.
    pub fn check_invariants(&self) -> Result<(), String> {
        for (i, &x) in self.w.iter().enumerate() {
            let v = x.to_f64();
            if !(0.0..=1.0 + 1e-9).contains(&v) || v.is_nan() {
                return Err(format!("weight[{i}] = {v} out of range"));
            }
        }
        for (i, &x) in self.sd.iter().enumerate() {
            let v = x.to_f64();
            if v <= 0.0 || v.is_nan() {
                return Err(format!("sd[{i}] = {v} not positive"));
            }
        }
        for (i, &x) in self.m.iter().enumerate() {
            let v = x.to_f64();
            if v.is_nan() || v.is_infinite() {
                return Err(format!("mean[{i}] = {v} not finite"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn init_seeds_first_component() {
        let frame = vec![10u8, 20, 30];
        let model: HostModel<f64> = HostModel::init(3, 3, &MogParams::default(), &frame);
        assert_eq!(model.pixels(), 3);
        let (w, m, sd) = model.pixel(1);
        assert_eq!(w, &[1.0, 0.0, 0.0]);
        assert_eq!(m, &[20.0, 20.0, 20.0]);
        assert_eq!(sd, &[30.0, 30.0, 30.0]);
    }

    #[test]
    fn pixel_mut_is_disjoint_per_pixel() {
        let frame = vec![0u8; 4];
        let mut model: HostModel<f32> = HostModel::init(4, 2, &MogParams::new(2), &frame);
        {
            let (w, _, _) = model.pixel_mut(2);
            w[1] = 0.5;
        }
        assert_eq!(model.pixel(2).0, &[1.0, 0.5]);
        assert_eq!(model.pixel(1).0, &[1.0, 0.0]);
    }

    #[test]
    fn invariants_hold_after_init() {
        let frame = vec![128u8; 16];
        let model: HostModel<f64> = HostModel::init(16, 5, &MogParams::new(5), &frame);
        assert!(model.check_invariants().is_ok());
    }

    #[test]
    fn invariants_catch_corruption() {
        let frame = vec![128u8; 4];
        let mut model: HostModel<f64> = HostModel::init(4, 3, &MogParams::default(), &frame);
        model.sd[0] = -1.0;
        assert!(model.check_invariants().is_err());
    }

    #[test]
    #[should_panic]
    fn init_rejects_wrong_frame_size() {
        let frame = vec![0u8; 3];
        let _: HostModel<f64> = HostModel::init(4, 3, &MogParams::default(), &frame);
    }
}

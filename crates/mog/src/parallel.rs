//! Multi-threaded CPU MoG using rayon — the counterpart of the paper's
//! 8-thread OpenMP build.
//!
//! Pixels are independent, so the frame is split into contiguous pixel
//! ranges processed in parallel; results are bit-identical to the serial
//! implementation (rayon parallel iterators preserve per-element
//! semantics).

use crate::model::HostModel;
use crate::params::{MogParams, ResolvedParams};
use crate::real::Real;
use crate::update::{step_pixel, Variant};
use mogpu_frame::{Frame, Mask, Resolution};
use rayon::prelude::*;

/// A stateful multi-threaded background subtractor.
#[derive(Debug, Clone)]
pub struct ParallelMog<T: Real> {
    resolution: Resolution,
    resolved: ResolvedParams<T>,
    variant: Variant,
    model: HostModel<T>,
}

impl<T: Real> ParallelMog<T> {
    /// Creates a subtractor seeded from `first_frame`.
    pub fn new(
        resolution: Resolution,
        params: MogParams,
        variant: Variant,
        first_frame: &[u8],
    ) -> Self {
        params.validate().expect("invalid MoG parameters");
        let model = HostModel::init(resolution.pixels(), params.k, &params, first_frame);
        ParallelMog {
            resolution,
            resolved: params.resolve(),
            variant,
            model,
        }
    }

    /// Read access to the mixture model.
    pub fn model(&self) -> &HostModel<T> {
        &self.model
    }

    /// Processes one frame in parallel over pixels.
    ///
    /// # Panics
    /// Panics if the frame resolution differs from the subtractor's.
    pub fn process(&mut self, frame: &Frame<u8>) -> Mask {
        assert_eq!(
            frame.resolution(),
            self.resolution,
            "frame resolution mismatch"
        );
        let k = self.model.k();
        let mut mask = Mask::new(self.resolution);
        let data = frame.as_slice();
        let variant = self.variant;
        let prm = self.resolved;
        // Zip per-pixel chunks of the three parameter arrays with the
        // output; each chunk is one pixel's K components.
        let w_chunks = self.model.w.par_chunks_mut(k);
        let m_chunks = self.model.m.par_chunks_mut(k);
        let sd_chunks = self.model.sd.par_chunks_mut(k);
        mask.as_mut_slice()
            .par_iter_mut()
            .zip(data.par_iter())
            .zip(w_chunks.zip(m_chunks.zip(sd_chunks)))
            .for_each(|((out, &px), (w, (m, sd)))| {
                let fg = step_pixel(variant, T::from_u8(px), w, m, sd, &prm);
                *out = if fg { 255 } else { 0 };
            });
        mask
    }

    /// Processes a sequence of frames.
    pub fn process_all(&mut self, frames: &[Frame<u8>]) -> Vec<Mask> {
        frames.iter().map(|f| self.process(f)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::SerialMog;
    use mogpu_frame::SceneBuilder;

    #[test]
    fn parallel_matches_serial_bit_for_bit() {
        let scene = SceneBuilder::new(Resolution::TINY)
            .seed(11)
            .walkers(3)
            .build();
        let (frames, _) = scene.render_sequence(15);
        let frames = frames.into_frames();
        for variant in [Variant::Sorted, Variant::Predicated] {
            let mut s = SerialMog::<f64>::new(
                Resolution::TINY,
                MogParams::default(),
                variant,
                frames[0].as_slice(),
            );
            let mut p = ParallelMog::<f64>::new(
                Resolution::TINY,
                MogParams::default(),
                variant,
                frames[0].as_slice(),
            );
            for f in &frames[1..] {
                assert_eq!(s.process(f), p.process(f), "variant {variant:?}");
            }
            assert_eq!(s.model().w, p.model().w);
            assert_eq!(s.model().m, p.model().m);
            assert_eq!(s.model().sd, p.model().sd);
        }
    }

    #[test]
    fn parallel_f32_runs() {
        let scene = SceneBuilder::new(Resolution::TINY)
            .seed(5)
            .walkers(1)
            .build();
        let (frames, _) = scene.render_sequence(5);
        let frames = frames.into_frames();
        let mut p = ParallelMog::<f32>::new(
            Resolution::TINY,
            MogParams::default(),
            Variant::NoSort,
            frames[0].as_slice(),
        );
        let masks = p.process_all(&frames[1..]);
        assert_eq!(masks.len(), 4);
        p.model().check_invariants().unwrap();
    }
}

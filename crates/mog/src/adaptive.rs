//! Adaptive component-count MoG — the related-work approach of the
//! paper's Section II (\[18\], Azmat et al., ICPPW 2012).
//!
//! Instead of a fixed K components per pixel, each pixel maintains only as
//! many components as its background needs: stable pixels converge to one
//! component, flickering pixels grow more (up to `k_max`). On a CPU this
//! "boosts the performance at cost of quality loss" because the average
//! per-pixel work drops; the paper argues it "may only yield limited
//! benefits" on a GPU, because lockstep warps pay for the *most* complex
//! pixel in the warp. The `exp_adaptive` experiment quantifies both sides
//! of that argument on the simulator.
//!
//! Rules (a faithful simplification of \[18\]'s variable-component scheme):
//!
//! * **match/update** — identical arithmetic to the fixed-K branchy
//!   update, applied to the `active` components only;
//! * **grow** — on total mismatch with `active < k_max`, append a virtual
//!   component (instead of replacing the weakest);
//! * **prune** — a component whose weight decays below `prune_weight` is
//!   removed (swap-removed with the last active component) as long as at
//!   least one component remains;
//! * **classify** — unconditional scan of the active components (the
//!   no-sort decision).

use crate::params::{MogParams, ResolvedParams};
use crate::real::Real;
use crate::update::MAX_K;
use mogpu_frame::{Frame, Mask, Resolution};

/// Weight below which a component is pruned.
pub const PRUNE_WEIGHT: f64 = 0.01;

/// Per-pixel mixture state with a variable component count.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveModel<T: Real> {
    k_max: usize,
    pixels: usize,
    /// Active component count per pixel (1..=k_max).
    pub active: Vec<u8>,
    /// Component weights, `pixels * k_max`, pixel-major.
    pub w: Vec<T>,
    /// Component means.
    pub m: Vec<T>,
    /// Component standard deviations.
    pub sd: Vec<T>,
}

impl<T: Real> AdaptiveModel<T> {
    /// Seeds every pixel with a single component from `first_frame`.
    pub fn init(pixels: usize, k_max: usize, params: &MogParams, first_frame: &[u8]) -> Self {
        assert_eq!(first_frame.len(), pixels, "seed frame size mismatch");
        assert!((1..=MAX_K).contains(&k_max), "k_max out of range");
        let n = pixels * k_max;
        let mut w = vec![T::zero(); n];
        let mut m = vec![T::zero(); n];
        let sd = vec![T::from_f64(params.initial_sd); n];
        for p in 0..pixels {
            w[p * k_max] = T::one();
            m[p * k_max] = T::from_u8(first_frame[p]);
        }
        AdaptiveModel {
            k_max,
            pixels,
            active: vec![1; pixels],
            w,
            m,
            sd,
        }
    }

    /// Maximum components per pixel.
    pub fn k_max(&self) -> usize {
        self.k_max
    }

    /// Mean active component count over all pixels.
    pub fn mean_active(&self) -> f64 {
        if self.active.is_empty() {
            return 0.0;
        }
        self.active.iter().map(|&a| a as f64).sum::<f64>() / self.active.len() as f64
    }

    /// Checks model invariants (active in 1..=k_max, finite parameters).
    pub fn check_invariants(&self) -> Result<(), String> {
        for (p, &a) in self.active.iter().enumerate() {
            if a == 0 || a as usize > self.k_max {
                return Err(format!("active[{p}] = {a} out of 1..={}", self.k_max));
            }
            for i in 0..a as usize {
                let idx = p * self.k_max + i;
                let (wv, mv, sv) = (
                    self.w[idx].to_f64(),
                    self.m[idx].to_f64(),
                    self.sd[idx].to_f64(),
                );
                if !(0.0..=1.0 + 1e-9).contains(&wv) || !mv.is_finite() || sv <= 0.0 {
                    return Err(format!("pixel {p} component {i}: w={wv} m={mv} sd={sv}"));
                }
            }
        }
        Ok(())
    }
}

/// One pixel step of the adaptive algorithm operating on the pixel's
/// component slices (`w/m/sd` have `k_max` slots; `active` is the current
/// count). Returns `(foreground, new_active)`.
pub fn step_pixel_adaptive<T: Real>(
    p: T,
    active: usize,
    w: &mut [T],
    m: &mut [T],
    sd: &mut [T],
    prm: &ResolvedParams<T>,
    k_max: usize,
) -> (bool, usize) {
    debug_assert!(active >= 1 && active <= k_max);
    let mut diff = [T::zero(); MAX_K];
    let mut matched = false;
    for i in 0..active {
        let d = (m[i] - p).abs();
        diff[i] = d;
        if d < prm.match_threshold {
            w[i] = prm.alpha * w[i] + prm.one_minus_alpha;
            let tmp = prm.one_minus_alpha / w[i];
            m[i] = m[i] + tmp * (p - m[i]);
            let dm = p - m[i];
            let var = sd[i] * sd[i] + tmp * (dm * dm - sd[i] * sd[i]);
            sd[i] = var.max(prm.min_var).sqrt();
            matched = true;
        } else {
            w[i] = prm.alpha * w[i];
        }
    }
    let mut active = active;
    if !matched {
        if active < k_max {
            // Grow: append a virtual component.
            w[active] = prm.initial_weight;
            m[active] = p;
            sd[active] = prm.initial_sd;
            diff[active] = T::zero();
            active += 1;
        } else {
            // Full: replace the weakest, as in the fixed-K algorithm.
            let mut weakest = 0;
            for i in 1..active {
                if w[i] < w[weakest] {
                    weakest = i;
                }
            }
            w[weakest] = prm.initial_weight;
            m[weakest] = p;
            sd[weakest] = prm.initial_sd;
            diff[weakest] = T::zero();
        }
    }
    // Prune decayed components (keep at least one). Swap-remove keeps the
    // active prefix dense; iterate backwards so indices stay valid.
    let prune = T::from_f64(PRUNE_WEIGHT);
    let mut i = active;
    while i > 0 {
        i -= 1;
        if active > 1 && w[i] < prune {
            active -= 1;
            w.swap(i, active);
            m.swap(i, active);
            sd.swap(i, active);
            diff.swap(i, active);
        }
    }
    // Classify over the remaining active components (no-sort decision).
    let mut foreground = true;
    for i in 0..active {
        let bg = w[i] >= prm.bg_weight && diff[i] / sd[i] < prm.bg_sigma_ratio;
        foreground &= !bg;
    }
    (foreground, active)
}

/// Serial adaptive-K background subtractor (the CPU side of the
/// Section II comparison).
#[derive(Debug, Clone)]
pub struct AdaptiveMog<T: Real> {
    resolution: Resolution,
    resolved: ResolvedParams<T>,
    model: AdaptiveModel<T>,
}

impl<T: Real> AdaptiveMog<T> {
    /// Creates a subtractor with up to `params.k` components per pixel.
    pub fn new(resolution: Resolution, params: MogParams, first_frame: &[u8]) -> Self {
        params.validate().expect("invalid MoG parameters");
        let model = AdaptiveModel::init(resolution.pixels(), params.k, &params, first_frame);
        AdaptiveMog {
            resolution,
            resolved: params.resolve(),
            model,
        }
    }

    /// The mixture model.
    pub fn model(&self) -> &AdaptiveModel<T> {
        &self.model
    }

    /// Processes one frame.
    ///
    /// # Panics
    /// Panics on a resolution mismatch.
    pub fn process(&mut self, frame: &Frame<u8>) -> Mask {
        assert_eq!(
            frame.resolution(),
            self.resolution,
            "frame resolution mismatch"
        );
        let k_max = self.model.k_max;
        let mut mask = Mask::new(self.resolution);
        let data = frame.as_slice();
        let out = mask.as_mut_slice();
        for p in 0..data.len() {
            let r = p * k_max..(p + 1) * k_max;
            let active = self.model.active[p] as usize;
            let (fg, new_active) = step_pixel_adaptive(
                T::from_u8(data[p]),
                active,
                &mut self.model.w[r.clone()],
                &mut self.model.m[r.clone()],
                &mut self.model.sd[r],
                &self.resolved,
                k_max,
            );
            self.model.active[p] = new_active as u8;
            out[p] = if fg { 255 } else { 0 };
        }
        mask
    }

    /// Processes a frame sequence.
    pub fn process_all(&mut self, frames: &[Frame<u8>]) -> Vec<Mask> {
        frames.iter().map(|f| self.process(f)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mogpu_frame::SceneBuilder;

    #[test]
    fn stable_pixels_stay_at_one_component() {
        let prm: ResolvedParams<f64> = MogParams::new(5).resolve();
        let mut w = vec![0.0; 5];
        w[0] = 1.0;
        let mut m = vec![100.0; 5];
        let mut sd = vec![30.0; 5];
        let mut active = 1usize;
        for _ in 0..50 {
            let (_, a) = step_pixel_adaptive(100.0, active, &mut w, &mut m, &mut sd, &prm, 5);
            active = a;
        }
        assert_eq!(active, 1, "a stable pixel must not grow components");
    }

    #[test]
    fn bimodal_pixels_grow_components() {
        let prm: ResolvedParams<f64> = MogParams::new(5).resolve();
        let mut w = vec![0.0; 5];
        w[0] = 1.0;
        let mut m = vec![100.0; 5];
        let mut sd = vec![30.0; 5];
        let mut active = 1usize;
        for t in 0..60 {
            let px = if t % 2 == 0 { 100.0 } else { 200.0 };
            let (_, a) = step_pixel_adaptive(px, active, &mut w, &mut m, &mut sd, &prm, 5);
            active = a;
        }
        assert!(active >= 2, "a bimodal pixel must grow, active = {active}");
    }

    #[test]
    fn decayed_components_are_pruned() {
        let prm: ResolvedParams<f64> = MogParams::new(5).resolve();
        let mut w = vec![0.0; 5];
        w[0] = 1.0;
        let mut m = vec![100.0; 5];
        let mut sd = vec![30.0; 5];
        let mut active = 1usize;
        // One outlier grows a component...
        let (_, a) = step_pixel_adaptive(250.0, active, &mut w, &mut m, &mut sd, &prm, 5);
        active = a;
        assert_eq!(active, 2);
        // ...then a long stable run decays it below the prune threshold
        // (0.05 * 0.95^n < 0.01 after ~32 frames).
        for _ in 0..60 {
            let (_, a) = step_pixel_adaptive(100.0, active, &mut w, &mut m, &mut sd, &prm, 5);
            active = a;
        }
        assert_eq!(active, 1, "the stale component must be pruned");
    }

    #[test]
    fn mean_active_reflects_scene_complexity() {
        let res = Resolution::TINY;
        let complex = SceneBuilder::new(res).seed(1).bimodal_fraction(0.5).build();
        let simple = SceneBuilder::new(res).seed(1).bimodal_fraction(0.0).build();
        let run = |scene: &mogpu_frame::Scene| {
            let (frames, _) = scene.render_sequence(40);
            let frames = frames.into_frames();
            let mut mog = AdaptiveMog::<f64>::new(res, MogParams::new(5), frames[0].as_slice());
            mog.process_all(&frames[1..]);
            mog.model().check_invariants().unwrap();
            mog.model().mean_active()
        };
        let complex_k = run(&complex);
        let simple_k = run(&simple);
        assert!(
            complex_k > simple_k + 0.3,
            "complex {complex_k:.2} should exceed simple {simple_k:.2}"
        );
        assert!(
            simple_k < 2.0,
            "simple scene should stay near 1 component, got {simple_k:.2}"
        );
    }

    #[test]
    fn detection_still_works() {
        let res = Resolution::TINY;
        let scene = SceneBuilder::new(res).seed(3).walkers(2).build();
        let (frames, truths) = scene.render_sequence(30);
        let frames = frames.into_frames();
        let truths = truths.into_frames();
        let mut mog = AdaptiveMog::<f64>::new(res, MogParams::new(5), frames[0].as_slice());
        let masks = mog.process_all(&frames[1..]);
        let last = masks.last().unwrap();
        let truth = truths.last().unwrap();
        let mut hit = 0;
        let mut total = 0;
        for (d, t) in last.as_slice().iter().zip(truth.as_slice()) {
            if *t == 255 {
                total += 1;
                if *d == 255 {
                    hit += 1;
                }
            }
        }
        assert!(
            hit as f64 / total.max(1) as f64 > 0.6,
            "recall {hit}/{total}"
        );
    }

    #[test]
    fn invariants_hold_under_stress() {
        let res = Resolution::TINY;
        let scene = SceneBuilder::new(res)
            .seed(9)
            .walkers(4)
            .bimodal_fraction(0.3)
            .build();
        let (frames, _) = scene.render_sequence(25);
        let frames = frames.into_frames();
        let mut mog = AdaptiveMog::<f32>::new(res, MogParams::new(4), frames[0].as_slice());
        mog.process_all(&frames[1..]);
        mog.model().check_invariants().unwrap();
    }
}

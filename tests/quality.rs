//! Output-quality study (paper Table IV / Section V-A): MS-SSIM of every
//! optimization level's foreground and background output against the CPU
//! double-precision ground truth.
//!
//! The paper reports 99% background similarity at every level, and 95-99%
//! foreground similarity (the small drops coming from the floating-point
//! reordering of the algorithm-specific tunings).

use mogpu::prelude::*;

const FRAMES: usize = 60;

struct QualityRun {
    fg_msssim: f64,
    bg_msssim: f64,
}

/// Runs a level and scores its masks against the f64 sorted CPU ground
/// truth over the post-warm-up tail. "Foreground" compares the masks,
/// "background" compares the background selections (inverted masks applied
/// to the input frame, like the paper's background image comparison).
fn quality_of<T: mogpu::core::DeviceReal>(level: OptLevel) -> QualityRun {
    let res = Resolution::QVGA;
    let scene = SceneBuilder::new(res)
        .seed(99)
        .walkers(4)
        .bimodal_fraction(0.05)
        .build();
    let (frames, _) = scene.render_sequence(FRAMES);
    let frames = frames.into_frames();

    let mut cpu = SerialMog::<f64>::new(
        res,
        MogParams::default(),
        Variant::Sorted,
        frames[0].as_slice(),
    );
    let truth = cpu.process_all(&frames[1..]);

    let mut gpu = GpuMog::<T>::new(
        res,
        MogParams::default(),
        level,
        frames[0].as_slice(),
        GpuConfig::tesla_c2075(),
    )
    .unwrap();
    let report = gpu.process_all(&frames[1..]).unwrap();

    // Score the last third of the sequence (post warm-up).
    let start = truth.len() * 2 / 3;
    let mut fg_sum = 0.0;
    let mut bg_sum = 0.0;
    let mut n = 0.0;
    for i in start..truth.len() {
        let frame = &frames[i + 1];
        fg_sum += ms_ssim(&report.masks[i], &truth[i]).expect("QVGA supports 5 scales");
        // Background images: input pixels where the mask says background.
        let bg_gpu = background_image(frame, &report.masks[i]);
        let bg_cpu = background_image(frame, &truth[i]);
        bg_sum += ms_ssim(&bg_gpu, &bg_cpu).expect("QVGA supports 5 scales");
        n += 1.0;
    }
    QualityRun {
        fg_msssim: fg_sum / n,
        bg_msssim: bg_sum / n,
    }
}

fn background_image(frame: &Frame<u8>, mask: &Mask) -> Frame<u8> {
    let mut out = frame.clone();
    for (o, &m) in out.as_mut_slice().iter_mut().zip(mask.as_slice()) {
        if m != 0 {
            *o = 0;
        }
    }
    out
}

#[test]
fn exact_levels_score_perfect_quality() {
    // B and E are bit-exact vs. their CPU variants whose *decisions*
    // equal the sorted reference, so MS-SSIM must be 1.0.
    for level in [OptLevel::B, OptLevel::D, OptLevel::E] {
        let q = quality_of::<f64>(level);
        assert!(q.fg_msssim > 0.999, "level {level} fg {:.4}", q.fg_msssim);
        assert!(q.bg_msssim > 0.999, "level {level} bg {:.4}", q.bg_msssim);
    }
}

#[test]
fn register_reduced_level_keeps_table_iv_quality() {
    // Paper Table IV level F: foreground 95%, background 99%.
    let q = quality_of::<f64>(OptLevel::F);
    assert!(
        q.fg_msssim > 0.93,
        "F foreground MS-SSIM {:.4}",
        q.fg_msssim
    );
    assert!(
        q.bg_msssim > 0.97,
        "F background MS-SSIM {:.4}",
        q.bg_msssim
    );
}

#[test]
fn windowed_level_keeps_table_iv_quality() {
    let q = quality_of::<f64>(OptLevel::Windowed { group: 8 });
    assert!(
        q.fg_msssim > 0.93,
        "W(8) foreground MS-SSIM {:.4}",
        q.fg_msssim
    );
    assert!(
        q.bg_msssim > 0.97,
        "W(8) background MS-SSIM {:.4}",
        q.bg_msssim
    );
}

#[test]
fn single_precision_loses_at_most_a_few_percent() {
    // Paper Section V-C: ~5% average foreground loss for float.
    let q = quality_of::<f32>(OptLevel::F);
    assert!(
        q.fg_msssim > 0.90,
        "float-F foreground MS-SSIM {:.4}",
        q.fg_msssim
    );
    assert!(
        q.bg_msssim > 0.95,
        "float-F background MS-SSIM {:.4}",
        q.bg_msssim
    );
}

//! Property-based tests (proptest) on the core invariants of the
//! workspace: MoG model health under arbitrary pixel streams, equivalence
//! of the algorithm variants, coalescing-analysis bounds, occupancy
//! bounds, and scene determinism.

use mogpu::mog::update::{
    classify_nosort, classify_sorted, match_update_branchy, match_update_predicated, step_pixel,
    MAX_K,
};
use mogpu::prelude::*;
use proptest::prelude::*;

fn arb_params() -> impl Strategy<Value = MogParams> {
    (1usize..=5, 0.80f64..0.99, 5.0f64..40.0, 0.05f64..0.5).prop_map(
        |(k, alpha, match_threshold, bg_weight)| {
            let mut p = MogParams::new(k);
            p.alpha = alpha;
            p.match_threshold = match_threshold;
            p.bg_weight = bg_weight;
            p
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Weights stay in [0,1], sds stay >= floor and finite, means stay
    /// finite, for any pixel stream, any variant, any valid parameters.
    #[test]
    fn model_invariants_under_arbitrary_streams(
        params in arb_params(),
        pixels in proptest::collection::vec(0u8..=255, 1..120),
        variant_idx in 0usize..4,
    ) {
        let variant = Variant::ALL[variant_idx];
        let prm = params.resolve::<f64>();
        let k = params.k;
        let mut w = vec![0.0f64; k];
        w[0] = 1.0;
        let mut m = vec![pixels[0] as f64; k];
        let mut sd = vec![params.initial_sd; k];
        for &px in &pixels {
            step_pixel(variant, px as f64, &mut w, &mut m, &mut sd, &prm);
            for &x in &w {
                prop_assert!((0.0..=1.0 + 1e-9).contains(&x), "weight {x}");
            }
            for &x in &sd {
                prop_assert!(x.is_finite() && x >= params.min_sd - 1e-9, "sd {x}");
            }
            for &x in &m {
                prop_assert!(x.is_finite(), "mean {x}");
            }
        }
    }

    /// The predicated update is bit-identical to the branchy update for
    /// every reachable state and pixel.
    #[test]
    fn predicated_equals_branchy_everywhere(
        params in arb_params(),
        pixels in proptest::collection::vec(0u8..=255, 1..80),
    ) {
        let prm = params.resolve::<f64>();
        let k = params.k;
        let mut w1 = vec![0.0f64; k]; w1[0] = 1.0;
        let mut m1 = vec![pixels[0] as f64; k];
        let mut sd1 = vec![params.initial_sd; k];
        let (mut w2, mut m2, mut sd2) = (w1.clone(), m1.clone(), sd1.clone());
        for &px in &pixels {
            let d1 = match_update_branchy(px as f64, &mut w1, &mut m1, &mut sd1, &prm);
            let d2 = match_update_predicated(px as f64, &mut w2, &mut m2, &mut sd2, &prm);
            prop_assert_eq!(d1, d2);
            prop_assert_eq!(&w1, &w2);
            prop_assert_eq!(&m1, &m2);
            prop_assert_eq!(&sd1, &sd2);
        }
    }

    /// The background decision is order-independent: sorted and no-sort
    /// classification agree on arbitrary component states.
    #[test]
    fn classification_is_order_independent(
        params in arb_params(),
        seed_vals in proptest::collection::vec((0.0f64..1.0, 0.0f64..255.0, 4.0f64..40.0, 0.0f64..80.0), 5),
    ) {
        let prm = params.resolve::<f64>();
        let k = params.k;
        let mut w = vec![0.0; k];
        let mut sd = vec![1.0; k];
        let mut diff = [0.0f64; MAX_K];
        for i in 0..k {
            let (wv, _mv, sdv, dv) = seed_vals[i];
            w[i] = wv;
            sd[i] = sdv;
            diff[i] = dv;
        }
        let a = classify_sorted(&diff, &w, &sd, &prm);
        let b = classify_nosort(&diff, &w, &sd, &prm);
        prop_assert_eq!(a, b);
    }

    /// f32 and f64 runs of the same stream make identical decisions for
    /// pixels far from the thresholds (coarse agreement check).
    #[test]
    fn precision_agreement_on_stable_streams(
        base in 40u8..200,
        n in 5usize..40,
    ) {
        let params = MogParams::default();
        let p64 = params.resolve::<f64>();
        let p32 = params.resolve::<f32>();
        let k = params.k;
        let mut w64 = vec![0.0f64; k]; w64[0] = 1.0;
        let mut m64 = vec![base as f64; k];
        let mut sd64 = vec![params.initial_sd; k];
        let mut w32 = vec![0.0f32; k]; w32[0] = 1.0;
        let mut m32 = vec![base as f32; k];
        let mut sd32 = vec![params.initial_sd as f32; k];
        for i in 0..n {
            let px = base.saturating_add((i % 3) as u8);
            let a = step_pixel(Variant::Predicated, px as f64, &mut w64, &mut m64, &mut sd64, &p64);
            let b = step_pixel(Variant::Predicated, px as f32, &mut w32, &mut m32, &mut sd32, &p32);
            prop_assert_eq!(a, b, "diverged at step {}", i);
        }
    }

    /// Scene rendering is a pure function of (seed, frame index).
    #[test]
    fn scene_rendering_is_deterministic(seed in any::<u64>(), idx in 0usize..50) {
        let build = || SceneBuilder::new(Resolution::TINY).seed(seed).walkers(2).build();
        let (a, ma) = build().render(idx);
        let (b, mb) = build().render(idx);
        prop_assert_eq!(a, b);
        prop_assert_eq!(ma, mb);
    }

    /// MS-SSIM is symmetric, bounded by 1, and 1 for identical frames.
    #[test]
    fn msssim_axioms(seed in any::<u64>()) {
        let scene = SceneBuilder::new(Resolution::QVGA).seed(seed).walkers(1).build();
        let (a, _) = scene.render(0);
        let (b, _) = scene.render(1);
        let s_ab = ms_ssim(&a, &b).unwrap();
        let s_ba = ms_ssim(&b, &a).unwrap();
        prop_assert!((s_ab - s_ba).abs() < 1e-9);
        prop_assert!(s_ab <= 1.0 + 1e-9);
        let s_aa = ms_ssim(&a, &a).unwrap();
        prop_assert!((s_aa - 1.0).abs() < 1e-6);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Occupancy is in (0, 1] and monotone non-increasing in register
    /// pressure.
    #[test]
    fn occupancy_bounds_and_monotonicity(
        regs in 8u32..64,
        tpb_exp in 5u32..10,
        shared in 0usize..16384,
    ) {
        use mogpu::sim::{occupancy, KernelResources, LaunchConfig};
        let cfg = GpuConfig::tesla_c2075();
        let tpb = 1u32 << tpb_exp;
        let lc = LaunchConfig { blocks: 100, threads_per_block: tpb };
        let res = KernelResources { regs_per_thread: regs, shared_bytes_per_block: shared, local_f64_slots: 0 };
        if let Some(o) = occupancy(&cfg, &lc, &res) {
            prop_assert!(o.occupancy > 0.0 && o.occupancy <= 1.0);
            prop_assert_eq!(o.resident_warps, o.resident_blocks * tpb.div_ceil(32));
            // More registers can never increase occupancy.
            let res2 = KernelResources { regs_per_thread: regs + 8, ..res };
            if let Some(o2) = occupancy(&cfg, &lc, &res2) {
                prop_assert!(o2.resident_warps <= o.resident_warps);
            }
        }
    }

    /// Coalescing analysis: a warp memory slot produces between 1 and
    /// `lanes` transactions for word-aligned accesses, and requested bytes
    /// never exceed transacted bytes.
    #[test]
    fn transaction_count_bounds(
        base in 0u64..10_000,
        stride in 1u64..96,
        width_sel in 0usize..3,
    ) {
        use mogpu::sim::KernelStats;
        // Reach the warp analyzer through a micro-kernel run.
        use mogpu::sim::{launch, DeviceMemory, Kernel, KernelResources, LaunchConfig, ThreadCtx};
        let width = [1usize, 4, 8][width_sel];
        struct Strided { buf: mogpu::sim::Buffer, base: u64, stride: u64, width: usize }
        impl Kernel for Strided {
            fn resources(&self) -> KernelResources {
                KernelResources { regs_per_thread: 8, shared_bytes_per_block: 0, local_f64_slots: 0 }
            }
            fn run(&self, ctx: &mut ThreadCtx<'_>) {
                let i = ctx.global_thread_id() as u64;
                let elem = (self.base + i * self.stride) as usize;
                match self.width {
                    1 => { ctx.ld_u8(self.buf, elem); }
                    4 => { ctx.ld_f32(self.buf, elem); }
                    _ => { ctx.ld_f64(self.buf, elem); }
                }
            }
        }
        let mut mem = DeviceMemory::new(1 << 24);
        let buf = mem.alloc((10_000 + 32 * 96) * 8 + 64).unwrap();
        let cfg = GpuConfig::tesla_c2075();
        let k = Strided { buf, base, stride, width };
        let report = launch(&mut mem, &cfg, LaunchConfig { blocks: 1, threads_per_block: 32 }, &k).unwrap();
        let s: &KernelStats = &report.stats;
        prop_assert!(s.global_load_tx >= 1);
        // A 32-lane access of `width` bytes can touch at most
        // 32 * ceil(width/seg + 1) segments; with width <= 8 that is 64.
        prop_assert!(s.global_load_tx <= 64, "tx = {}", s.global_load_tx);
        prop_assert!(s.bytes_requested() <= s.bytes_transacted(&cfg));
        prop_assert_eq!(s.bytes_requested(), 32 * width as u64);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Adaptive-K invariants: active count stays in 1..=k_max and the
    /// active-prefix parameters stay healthy under arbitrary streams.
    #[test]
    fn adaptive_invariants_under_arbitrary_streams(
        k_max in 1usize..=6,
        pixels in proptest::collection::vec(0u8..=255, 1..100),
    ) {
        use mogpu::mog::adaptive::step_pixel_adaptive;
        let params = MogParams::new(k_max);
        let prm = params.resolve::<f64>();
        let mut w = vec![0.0f64; k_max];
        w[0] = 1.0;
        let mut m = vec![pixels[0] as f64; k_max];
        let mut sd = vec![params.initial_sd; k_max];
        let mut active = 1usize;
        for &px in &pixels {
            let (_, a) =
                step_pixel_adaptive(px as f64, active, &mut w, &mut m, &mut sd, &prm, k_max);
            active = a;
            prop_assert!(active >= 1 && active <= k_max, "active = {active}");
            for i in 0..active {
                prop_assert!((0.0..=1.0 + 1e-9).contains(&w[i]), "w[{i}] = {}", w[i]);
                prop_assert!(sd[i].is_finite() && sd[i] > 0.0);
                prop_assert!(m[i].is_finite());
            }
        }
    }

    /// Cache model axioms: hits + misses equals accesses; a repeated
    /// access within capacity always hits; hit rate is within [0, 1].
    #[test]
    fn cache_model_axioms(
        capacity_lines in 1usize..64,
        assoc in 1usize..8,
        accesses in proptest::collection::vec(0u64..256, 1..200),
    ) {
        use mogpu::sim::cache::CacheModel;
        let mut c = CacheModel::new(capacity_lines * 128, assoc, 128);
        for &a in &accesses {
            c.access_segment(a);
        }
        prop_assert_eq!(c.hits + c.misses, accesses.len() as u64);
        prop_assert!((0.0..=1.0).contains(&c.hit_rate()));
        // Immediate re-access always hits (MRU).
        let last = *accesses.last().unwrap();
        prop_assert!(c.access_segment(last));
    }

    /// PGM round trip is lossless for arbitrary frames.
    #[test]
    fn pgm_round_trip_lossless(
        w in 1usize..40,
        h in 1usize..30,
        seed in any::<u64>(),
    ) {
        use mogpu::frame::{read_pgm, write_pgm};
        let res = Resolution::new(w, h);
        let mut state = seed;
        let data: Vec<u8> = (0..res.pixels())
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                (state >> 33) as u8
            })
            .collect();
        let f = Frame::from_vec(res, data).unwrap();
        let mut buf = Vec::new();
        write_pgm(&f, &mut buf).unwrap();
        prop_assert_eq!(read_pgm(buf.as_slice()).unwrap(), f);
    }

    /// Y4M luma round trip is lossless for even-dimension frames.
    #[test]
    fn y4m_round_trip_lossless(
        w in 1usize..20,
        h in 1usize..15,
        n in 1usize..4,
        seed in any::<u64>(),
    ) {
        use mogpu::frame::{read_y4m, write_y4m, FrameSequence};
        let res = Resolution::new(w * 2, h * 2);
        let mut state = seed;
        let mut seq = FrameSequence::new(res);
        for _ in 0..n {
            let data: Vec<u8> = (0..res.pixels())
                .map(|_| {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(7);
                    (state >> 33) as u8
                })
                .collect();
            seq.push(Frame::from_vec(res, data).unwrap()).unwrap();
        }
        let mut buf = Vec::new();
        write_y4m(&seq, 30, &mut buf).unwrap();
        let back = read_y4m(buf.as_slice()).unwrap();
        prop_assert_eq!(back, seq);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Morphology axioms on arbitrary masks: erosion shrinks, dilation
    /// grows, opening is contained in the input, the input is contained
    /// in its closing, and blob areas sum to the mask's support.
    #[test]
    fn morphology_axioms(seed in any::<u64>(), density in 0.05f64..0.6) {
        use mogpu::frame::{connected_components, close3, dilate3, erode3, open3};
        let res = Resolution::new(24, 18);
        let mut state = seed | 1;
        let data: Vec<u8> = (0..res.pixels())
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(13);
                if ((state >> 33) as f64 / u32::MAX as f64) < density { 255 } else { 0 }
            })
            .collect();
        let m = Frame::from_vec(res, data).unwrap();
        let eroded = erode3(&m);
        let dilated = dilate3(&m);
        let opened = open3(&m);
        let closed = close3(&m);
        for i in 0..m.len() {
            let (orig, er, di, op) = (
                m.as_slice()[i],
                eroded.as_slice()[i],
                dilated.as_slice()[i],
                opened.as_slice()[i],
            );
            prop_assert!(er <= orig, "erosion must shrink");
            prop_assert!(di >= orig, "dilation must grow");
            prop_assert!(op <= orig, "opening ⊆ input");
        }
        // Closing is extensive only away from the clamped border (the
        // final erosion truncates frame-edge pixels).
        for y in 1..res.height - 1 {
            for x in 1..res.width - 1 {
                prop_assert!(
                    closed.get(x, y) >= m.get(x, y),
                    "input ⊆ closing in the interior"
                );
            }
        }
        let (_, blobs) = connected_components(&m);
        let support = m.as_slice().iter().filter(|&&p| p != 0).count();
        let total_area: usize = blobs.iter().map(|b| b.area).sum();
        prop_assert_eq!(total_area, support);
        for b in &blobs {
            prop_assert!(b.area <= b.width() * b.height());
            prop_assert!(b.bbox.0 <= b.centroid.0 && b.centroid.0 <= b.bbox.2);
            prop_assert!(b.bbox.1 <= b.centroid.1 && b.centroid.1 <= b.bbox.3);
        }
    }
}

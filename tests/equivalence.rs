//! Cross-crate functional equivalence: every simulated GPU optimization
//! level must reproduce the CPU reference implementation's output — the
//! property the paper's entire optimization study rests on ("without
//! impact to the output quality").

use mogpu::prelude::*;

fn scene_frames(res: Resolution, n: usize, seed: u64) -> Vec<Frame<u8>> {
    SceneBuilder::new(res)
        .seed(seed)
        .walkers(3)
        .bimodal_fraction(0.1)
        .build()
        .render_sequence(n)
        .0
        .into_frames()
}

fn gpu_masks<T: mogpu::core::DeviceReal>(
    level: OptLevel,
    params: MogParams,
    frames: &[Frame<u8>],
) -> Vec<Mask> {
    let mut gpu = GpuMog::<T>::new(
        frames[0].resolution(),
        params,
        level,
        frames[0].as_slice(),
        GpuConfig::tesla_c2075(),
    )
    .expect("pipeline construction");
    gpu.process_all(&frames[1..]).expect("processing").masks
}

fn cpu_masks<T: mogpu::mog::Real>(
    variant: Variant,
    params: MogParams,
    frames: &[Frame<u8>],
) -> Vec<Mask> {
    let mut cpu = SerialMog::<T>::new(
        frames[0].resolution(),
        params,
        variant,
        frames[0].as_slice(),
    );
    cpu.process_all(&frames[1..])
}

#[test]
fn levels_a_b_c_match_sorted_reference_bit_exactly() {
    let frames = scene_frames(Resolution::TINY, 10, 1);
    let reference = cpu_masks::<f64>(Variant::Sorted, MogParams::default(), &frames);
    for level in [OptLevel::A, OptLevel::B, OptLevel::C] {
        let gpu = gpu_masks::<f64>(level, MogParams::default(), &frames);
        assert_eq!(
            gpu, reference,
            "level {level} diverged from the sorted CPU reference"
        );
    }
}

#[test]
fn level_d_matches_nosort_reference_bit_exactly() {
    let frames = scene_frames(Resolution::TINY, 10, 2);
    let reference = cpu_masks::<f64>(Variant::NoSort, MogParams::default(), &frames);
    let gpu = gpu_masks::<f64>(OptLevel::D, MogParams::default(), &frames);
    assert_eq!(gpu, reference);
}

#[test]
fn level_e_matches_predicated_reference_bit_exactly() {
    let frames = scene_frames(Resolution::TINY, 10, 3);
    let reference = cpu_masks::<f64>(Variant::Predicated, MogParams::default(), &frames);
    let gpu = gpu_masks::<f64>(OptLevel::E, MogParams::default(), &frames);
    assert_eq!(gpu, reference);
}

#[test]
fn level_f_matches_register_reduced_reference_bit_exactly() {
    let frames = scene_frames(Resolution::TINY, 10, 4);
    let reference = cpu_masks::<f64>(Variant::RegisterReduced, MogParams::default(), &frames);
    let gpu = gpu_masks::<f64>(OptLevel::F, MogParams::default(), &frames);
    assert_eq!(gpu, reference);
}

#[test]
fn windowed_groups_match_level_f_for_any_group_size() {
    let frames = scene_frames(Resolution::TINY, 13, 5);
    let f = gpu_masks::<f64>(OptLevel::F, MogParams::default(), &frames);
    for group in [1, 2, 4, 8] {
        let w = gpu_masks::<f64>(OptLevel::Windowed { group }, MogParams::default(), &frames);
        assert_eq!(
            w, f,
            "windowed group {group} diverged (incl. remainder handling)"
        );
    }
}

#[test]
fn five_gaussian_equivalence() {
    let frames = scene_frames(Resolution::TINY, 8, 6);
    let params = MogParams::new(5);
    let reference = cpu_masks::<f64>(Variant::Sorted, params, &frames);
    let gpu = gpu_masks::<f64>(OptLevel::C, params, &frames);
    assert_eq!(gpu, reference);
}

#[test]
fn single_precision_equivalence() {
    let frames = scene_frames(Resolution::TINY, 8, 7);
    let reference = cpu_masks::<f32>(Variant::Predicated, MogParams::default(), &frames);
    let gpu = gpu_masks::<f32>(OptLevel::E, MogParams::default(), &frames);
    assert_eq!(gpu, reference);
}

#[test]
fn device_model_state_matches_cpu_model_state_after_run() {
    // Not just the masks: the full Gaussian mixture state on the device
    // must equal the CPU's after processing the same frames.
    let frames = scene_frames(Resolution::TINY, 6, 8);
    let params = MogParams::default();
    let mut cpu = SerialMog::<f64>::new(
        frames[0].resolution(),
        params,
        Variant::Predicated,
        frames[0].as_slice(),
    );
    cpu.process_all(&frames[1..]);

    let mut gpu = GpuMog::<f64>::new(
        frames[0].resolution(),
        params,
        OptLevel::E,
        frames[0].as_slice(),
        GpuConfig::tesla_c2075(),
    )
    .unwrap();
    gpu.process_all(&frames[1..]).unwrap();
    let device_state = gpu.download_model(frames[0].as_slice());

    assert_eq!(device_state.w, cpu.model().w);
    assert_eq!(device_state.m, cpu.model().m);
    assert_eq!(device_state.sd, cpu.model().sd);
}

#[test]
fn parallel_cpu_matches_gpu_for_predicated_variant() {
    let frames = scene_frames(Resolution::TINY, 8, 9);
    let mut par = ParallelMog::<f64>::new(
        frames[0].resolution(),
        MogParams::default(),
        Variant::Predicated,
        frames[0].as_slice(),
    );
    let par_masks = par.process_all(&frames[1..]);
    let gpu = gpu_masks::<f64>(OptLevel::E, MogParams::default(), &frames);
    assert_eq!(par_masks, gpu);
}

#[test]
fn detection_quality_against_ground_truth() {
    // End-to-end sanity at a realistic (QQVGA) size: the fully optimized
    // pipeline must actually detect the walkers.
    let res = Resolution::QQVGA;
    let scene = SceneBuilder::new(res).seed(10).walkers(3).build();
    let (frames, truths) = scene.render_sequence(30);
    let frames = frames.into_frames();
    let truths = truths.into_frames();
    let mut gpu = GpuMog::<f64>::new(
        res,
        MogParams::default(),
        OptLevel::F,
        frames[0].as_slice(),
        GpuConfig::tesla_c2075(),
    )
    .unwrap();
    let report = gpu.process_all(&frames[1..]).unwrap();
    // Evaluate the last 10 frames (post warm-up).
    let mut confusion = mogpu::metrics::MaskConfusion::default();
    for i in report.masks.len() - 10..report.masks.len() {
        confusion.merge(&mask_confusion(&report.masks[i], &truths[i + 1]));
    }
    assert!(confusion.recall() > 0.7, "recall {:.3}", confusion.recall());
    assert!(
        confusion.accuracy() > 0.95,
        "accuracy {:.3}",
        confusion.accuracy()
    );
}

#[test]
fn adaptive_gpu_matches_adaptive_cpu() {
    use mogpu::core::AdaptiveGpuMog;
    use mogpu::mog::AdaptiveMog;
    let frames = scene_frames(Resolution::TINY, 12, 12);
    let params = MogParams::new(5);
    let mut cpu = AdaptiveMog::<f64>::new(Resolution::TINY, params, frames[0].as_slice());
    let cpu_masks = cpu.process_all(&frames[1..]);
    let mut gpu = AdaptiveGpuMog::<f64>::new(
        Resolution::TINY,
        params,
        frames[0].as_slice(),
        GpuConfig::tesla_c2075(),
    )
    .unwrap();
    let report = gpu.process_all(&frames[1..]).unwrap();
    assert_eq!(report.masks, cpu_masks);
    // The device's mean active count matches the CPU model's.
    assert!((gpu.mean_active() - cpu.model().mean_active()).abs() < 1e-12);
    cpu.model().check_invariants().unwrap();
}

//! Property-based tests of the multi-stream scheduler and its host
//! pipeline: stage ordering, engine exclusivity, the per-stream in-flight
//! buffer cap, makespan lower bounds, and single-stream equivalence of
//! [`MultiGpuMog`] with [`GpuMog`].

use mogpu::prelude::*;
use mogpu::sim::{StageTimes, StreamInput, StreamSchedule, StreamScheduler};
use proptest::prelude::*;

/// Float slack for schedule comparisons (starts/ends are sums of stage
/// times, so exact equality is one rounding error away).
const EPS: f64 = 1e-9;

fn arb_inputs() -> impl Strategy<Value = Vec<StreamInput>> {
    proptest::collection::vec(
        (
            proptest::collection::vec(
                (1e-4f64..5e-3, 1e-4f64..5e-3, 1e-4f64..5e-3)
                    .prop_map(|(h2d, kernel, d2h)| StageTimes { h2d, kernel, d2h }),
                1..10,
            ),
            (any::<bool>(), 1e-4f64..1e-2)
                .prop_map(|(paced, period)| if paced { period } else { 0.0 }),
        )
            .prop_map(|(stages, arrival_period)| StreamInput {
                stages,
                arrival_period,
            }),
        1..5,
    )
}

fn arb_cfg() -> impl Strategy<Value = GpuConfig> {
    (1u32..=2).prop_map(|copy_engines| {
        let mut cfg = GpuConfig::tesla_c2075();
        cfg.copy_engines = copy_engines;
        cfg
    })
}

/// All spans of one engine, as (start, end), across every stream.
fn engine_spans(
    sched: &StreamSchedule,
    pick: impl Fn(&mogpu::sim::dma::FrameSpans) -> Vec<(f64, f64)>,
) -> Vec<(f64, f64)> {
    let mut spans: Vec<(f64, f64)> = sched.streams.iter().flatten().flat_map(pick).collect();
    spans.sort_by(|a, b| a.0.total_cmp(&b.0));
    spans
}

fn assert_no_overlap(spans: &[(f64, f64)]) -> Result<(), TestCaseError> {
    for pair in spans.windows(2) {
        prop_assert!(
            pair[1].0 >= pair[0].1 - EPS,
            "spans overlap: {:?} then {:?}",
            pair[0],
            pair[1]
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Within every stream, every frame runs upload -> kernel -> download,
    /// and frames of one stream pass each stage in FIFO order.
    #[test]
    fn stage_and_fifo_order_hold(inputs in arb_inputs(), cfg in arb_cfg(), cap in 1usize..4) {
        let sched = StreamScheduler::new(cap).schedule(&inputs, &cfg);
        for frames in &sched.streams {
            for f in frames {
                prop_assert!(f.kernel.start >= f.h2d.end() - EPS);
                prop_assert!(f.d2h.start >= f.kernel.end() - EPS);
            }
            for pair in frames.windows(2) {
                prop_assert!(pair[1].h2d.start >= pair[0].h2d.end() - EPS);
                prop_assert!(pair[1].kernel.start >= pair[0].kernel.end() - EPS);
                prop_assert!(pair[1].d2h.start >= pair[0].d2h.end() - EPS);
            }
        }
    }

    /// One compute engine: no two kernels, from any pair of streams, ever
    /// overlap. Copies are exclusive per copy engine; with a single copy
    /// engine, *all* transfers share it.
    #[test]
    fn engines_are_exclusive(inputs in arb_inputs(), cfg in arb_cfg(), cap in 1usize..4) {
        let sched = StreamScheduler::new(cap).schedule(&inputs, &cfg);
        assert_no_overlap(&engine_spans(&sched, |f| {
            vec![(f.kernel.start, f.kernel.end())]
        }))?;
        if cfg.copy_engines >= 2 {
            assert_no_overlap(&engine_spans(&sched, |f| vec![(f.h2d.start, f.h2d.end())]))?;
            assert_no_overlap(&engine_spans(&sched, |f| vec![(f.d2h.start, f.d2h.end())]))?;
        } else {
            assert_no_overlap(&engine_spans(&sched, |f| {
                vec![(f.h2d.start, f.h2d.end()), (f.d2h.start, f.d2h.end())]
            }))?;
        }
    }

    /// The in-flight cap: a stream's upload i may not begin before its
    /// kernel i-cap has freed the input buffer, and its kernel i may not
    /// begin before download i-cap has freed the mask buffer.
    #[test]
    fn in_flight_buffers_stay_capped(inputs in arb_inputs(), cfg in arb_cfg(), cap in 1usize..4) {
        let sched = StreamScheduler::new(cap).schedule(&inputs, &cfg);
        prop_assert_eq!(sched.buffers_per_stream, cap);
        for frames in &sched.streams {
            for i in cap..frames.len() {
                prop_assert!(
                    frames[i].h2d.start >= frames[i - cap].kernel.end() - EPS,
                    "upload {} began before kernel {} freed its buffer",
                    i,
                    i - cap
                );
                prop_assert!(
                    frames[i].kernel.start >= frames[i - cap].d2h.end() - EPS,
                    "kernel {} began before download {} freed its buffer",
                    i,
                    i - cap
                );
            }
        }
    }

    /// The makespan is at least the busiest engine's total work — no
    /// engine can compress its serialized spans below their sum.
    #[test]
    fn makespan_bounds_engine_work(inputs in arb_inputs(), cfg in arb_cfg(), cap in 1usize..4) {
        let sched = StreamScheduler::new(cap).schedule(&inputs, &cfg);
        let kernel_work: f64 = inputs
            .iter()
            .flat_map(|s| s.stages.iter().map(|t| t.kernel))
            .sum();
        let h2d_work: f64 = inputs
            .iter()
            .flat_map(|s| s.stages.iter().map(|t| t.h2d))
            .sum();
        let d2h_work: f64 = inputs
            .iter()
            .flat_map(|s| s.stages.iter().map(|t| t.d2h))
            .sum();
        let busiest = if cfg.copy_engines >= 2 {
            kernel_work.max(h2d_work).max(d2h_work)
        } else {
            kernel_work.max(h2d_work + d2h_work)
        };
        prop_assert!(
            sched.makespan() >= busiest - EPS,
            "makespan {} below busiest engine {}",
            sched.makespan(),
            busiest
        );
        // And every stream's spans lie inside [0, makespan].
        for frames in &sched.streams {
            for f in frames {
                prop_assert!(f.h2d.start >= 0.0);
                prop_assert!(f.d2h.end() <= sched.makespan() + EPS);
            }
        }
    }
}

/// A one-stream [`MultiGpuMog`] is [`GpuMog`]: masks bit-identical, frame
/// counts equal — multiplexing is purely a scheduling layer.
#[test]
fn single_stream_multi_matches_gpu_mog() {
    let frames = SceneBuilder::new(Resolution::TINY)
        .seed(42)
        .walkers(2)
        .build()
        .render_sequence(9)
        .0
        .into_frames();
    let mut single = GpuMog::<f64>::new(
        Resolution::TINY,
        MogParams::default(),
        OptLevel::F,
        frames[0].as_slice(),
        GpuConfig::tesla_c2075(),
    )
    .unwrap();
    let expect = single.process_all(&frames[1..]).unwrap();
    let mut multi = MultiGpuMog::<f64>::new(
        Resolution::TINY,
        MogParams::default(),
        OptLevel::F,
        &[frames[0].as_slice()],
        GpuConfig::tesla_c2075(),
    )
    .unwrap();
    let got = multi.process_all(&[frames[1..].to_vec()]).unwrap();
    assert_eq!(got.per_stream[0].masks, expect.masks);
    assert_eq!(got.total_frames, expect.frames);
}

/// The bounded-buffer fix, end to end: device sojourn latency of a long
/// run does not exceed that of a short run by more than pipeline-fill
/// noise, at any stream count.
#[test]
fn device_latency_is_independent_of_run_length() {
    let run = |n_frames: usize, n_streams: usize| {
        let scenes: Vec<Vec<Frame<u8>>> = (0..n_streams)
            .map(|s| {
                SceneBuilder::new(Resolution::TINY)
                    .seed(7 + s as u64)
                    .walkers(1)
                    .build()
                    .render_sequence(n_frames)
                    .0
                    .into_frames()
            })
            .collect();
        let seeds: Vec<&[u8]> = scenes.iter().map(|f| f[0].as_slice()).collect();
        let mut multi = MultiGpuMog::<f64>::new(
            Resolution::TINY,
            MogParams::default(),
            OptLevel::C,
            &seeds,
            GpuConfig::tesla_c2075(),
        )
        .unwrap();
        let frames: Vec<Vec<Frame<u8>>> = scenes.iter().map(|f| f[1..].to_vec()).collect();
        let report = multi.process_all(&frames).unwrap();
        report.worst_latency()
    };
    for n_streams in [1usize, 3] {
        let short = run(5, n_streams);
        let long = run(21, n_streams);
        assert!(
            long < 2.0 * short,
            "{n_streams} streams: worst latency grew {short} -> {long} with run length"
        );
    }
}

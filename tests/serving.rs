//! Serving-path observability: histogram algebra properties, and the
//! acceptance criteria end-to-end — a live `mogpu streams
//! --serve-metrics` scrape whose histogram-reconstructed p99 matches
//! the report JSON percentile within one bucket width, with SLO
//! violation counts agreeing exactly across the Prometheus export, the
//! report JSON, and the JSONL event log.

use mogpu::sim::serving::{bucket_bound, LatencyHistogram, NUM_BOUNDS};
use proptest::prelude::*;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::time::Duration;

/// Latency samples spanning the interesting decades (microseconds to
/// tens of seconds), including exact bucket edges.
fn arb_samples() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec((1e-7f64..1e2, 0usize..3, 0usize..NUM_BOUNDS), 1..200).prop_map(
        |raw: Vec<(f64, usize, usize)>| {
            raw.into_iter()
                .map(|(v, kind, i)| match kind {
                    0 => v,
                    1 => bucket_bound(i), // exact bucket edges
                    _ => 0.0,             // below the first bound
                })
                .collect()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Merging per-part histograms is exactly the histogram of the
    /// concatenated samples: same buckets, same sum, count, min, max.
    #[test]
    fn merge_equals_concat(
        parts in proptest::collection::vec(arb_samples(), 1..5),
    ) {
        let mut merged = LatencyHistogram::new();
        for part in &parts {
            merged.merge(&LatencyHistogram::from_samples(part));
        }
        let all: Vec<f64> = parts.concat();
        let concat = LatencyHistogram::from_samples(&all);
        prop_assert_eq!(&merged.counts, &concat.counts);
        prop_assert_eq!(merged.count, concat.count);
        prop_assert!((merged.sum - concat.sum).abs() <= 1e-9 * concat.sum.abs().max(1.0));
        prop_assert_eq!(merged.min.to_bits(), concat.min.to_bits());
        prop_assert_eq!(merged.max.to_bits(), concat.max.to_bits());
    }

    /// The bucket quantile brackets the exact nearest-rank statistic:
    /// the true value lies within the reporting bucket, i.e. within one
    /// bucket width of the estimate.
    #[test]
    fn quantile_is_within_one_bucket_of_exact(
        samples in arb_samples(),
        q in 0.01f64..1.0,
    ) {
        let h = LatencyHistogram::from_samples(&samples);
        let mut sorted = samples.clone();
        sorted.sort_by(f64::total_cmp);
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        let exact = sorted[rank - 1];
        let (lo, hi) = h.quantile_bounds(q);
        prop_assert!(
            exact >= lo && exact <= hi,
            "exact {exact} outside bucket [{lo}, {hi}] at q={q}"
        );
        prop_assert_eq!(h.quantile(q).to_bits(), hi.to_bits());
    }
}

// ---- live scrape acceptance test ----

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mogpu_serving_{tag}"));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// One GET to `addr` at `path`; returns the body.
fn http_get(addr: &str, path: &str) -> String {
    let mut conn = TcpStream::connect(addr).expect("connect scrape endpoint");
    conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    write!(
        conn,
        "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut response = String::new();
    conn.read_to_string(&mut response).expect("read response");
    let (head, body) = response.split_once("\r\n\r\n").expect("malformed response");
    assert!(head.starts_with("HTTP/1.1 200"), "head: {head}");
    body.to_string()
}

/// Sums the values of every sample of `family` in exposition `text`,
/// optionally restricted to one `stream` label.
fn sum_family(text: &str, family: &str, stream: Option<usize>) -> f64 {
    text.lines()
        .filter(|l| l.starts_with(&format!("{family}{{")) || l.starts_with(&format!("{family} ")))
        .filter(|l| match stream {
            Some(s) => l.contains(&format!("stream=\"{s}\"")),
            None => true,
        })
        .map(|l| l.rsplit(' ').next().unwrap().parse::<f64>().unwrap())
        .sum()
}

/// Reconstructs the nearest-rank quantile from a family's cumulative
/// `le` buckets for one stream: returns (lower bound, upper bound) of
/// the bucket holding the rank.
fn quantile_from_buckets(text: &str, family: &str, stream: usize, q: f64) -> (f64, f64) {
    let mut buckets: Vec<(f64, f64)> = text
        .lines()
        .filter(|l| l.starts_with(&format!("{family}_bucket{{")))
        .filter(|l| l.contains(&format!("stream=\"{stream}\"")))
        .map(|l| {
            let le_raw = l.split("le=\"").nth(1).unwrap().split('"').next().unwrap();
            let le = if le_raw == "+Inf" {
                f64::INFINITY
            } else {
                le_raw.parse().unwrap()
            };
            (le, l.rsplit(' ').next().unwrap().parse::<f64>().unwrap())
        })
        .collect();
    buckets.sort_by(|a, b| a.0.total_cmp(&b.0));
    let count = buckets.last().expect("no buckets").1;
    assert!(count > 0.0, "{family} stream {stream}: empty histogram");
    let rank = (q * count).ceil().max(1.0);
    let idx = buckets.iter().position(|&(_, c)| c >= rank).unwrap();
    let lo = if idx == 0 { 0.0 } else { buckets[idx - 1].0 };
    (lo, buckets[idx].0)
}

/// ISSUE acceptance criteria: `mogpu streams --serve-metrics` serves a
/// scrapeable `/metrics` endpoint; p99 frame latency reconstructed from
/// the scraped histogram buckets matches the `MultiStreamReport` JSON
/// percentile within one bucket width; SLO violation counts agree
/// exactly across the Prometheus export, the report JSON, and the JSONL
/// event log.
#[test]
fn live_scrape_matches_report_json_and_event_log() {
    let dir = temp_dir("scrape");
    let events = dir.join("events.jsonl");
    let report = dir.join("report.json");
    let mut child = Command::new(env!("CARGO_BIN_EXE_mogpu"))
        .args([
            "streams",
            "--streams",
            "2",
            "--frames",
            "7",
            "--level",
            "C",
            "--fps",
            "30",
            "--slo-ms",
            "0.001", // 1 µs deadline: every frame violates
            "--events-out",
            events.to_str().unwrap(),
            "--report-out",
            report.to_str().unwrap(),
            "--serve-metrics",
            "127.0.0.1:0",
            "--serve-seconds",
            "30",
            "--replay-ms",
            "10",
        ])
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn mogpu streams");

    // The banner names the bound address; outputs are written before
    // the server starts, so report + events exist by now.
    let mut reader = BufReader::new(child.stdout.take().unwrap());
    let addr = loop {
        let mut line = String::new();
        assert!(reader.read_line(&mut line).unwrap() > 0, "no serve banner");
        if let Some(rest) = line.trim().strip_prefix("serving /metrics on http://") {
            break rest.split_whitespace().next().unwrap().to_string();
        }
    };
    // Let the 10 ms replay reach its final snapshot (<= 8 windows).
    std::thread::sleep(Duration::from_millis(300));
    let text = http_get(&addr, "/metrics");
    child.kill().ok();
    child.wait().ok();

    assert!(text.contains("# TYPE mogpu_frame_latency_seconds histogram"));
    assert!(text.contains("# TYPE mogpu_slo_violations_total counter"));

    let doc: mogpu::json::Value =
        mogpu::json::from_str(&std::fs::read_to_string(&report).unwrap()).unwrap();

    // p99 within one bucket width, per stream, scrape vs report JSON.
    let per_stream = doc["per_stream"].as_array().unwrap();
    for (s, row) in per_stream.iter().enumerate() {
        let exact = row["latency_p99_ms"].as_f64().unwrap() / 1e3;
        let (lo, hi) = quantile_from_buckets(&text, "mogpu_frame_latency_seconds", s, 0.99);
        assert!(
            exact > lo - 1e-12 && exact <= hi + 1e-12,
            "stream {s}: exact p99 {exact} outside scraped bucket ({lo}, {hi}]"
        );
    }

    // SLO violations: Prometheus == report JSON == JSONL event log.
    let scraped = sum_family(&text, "mogpu_slo_violations_total", None) as u64;
    let reported = doc["slo_violations_total"].as_f64().unwrap() as u64;
    let logged = std::fs::read_to_string(&events)
        .unwrap()
        .lines()
        .map(|l| mogpu::json::from_str::<mogpu::json::Value>(l).unwrap())
        .filter(|e| e["event"] == mogpu::json::Value::String("slo_violation".into()))
        .count() as u64;
    assert_eq!(scraped, reported, "Prometheus vs report JSON");
    assert_eq!(logged, reported, "event log vs report JSON");
    assert!(reported > 0, "scenario should produce violations");

    // Per-stream violation counters also agree with the report rows.
    for (s, row) in per_stream.iter().enumerate() {
        let v = row["slo_violations"].as_f64().unwrap();
        assert_eq!(sum_family(&text, "mogpu_slo_violations_total", Some(s)), v);
    }
    std::fs::remove_dir_all(&dir).ok();
}

//! Architectural-trend assertions: the simulator must reproduce the
//! *direction and rough magnitude* of every effect the paper's evaluation
//! reports across optimization levels.

use mogpu::core::RunReport;
use mogpu::prelude::*;

fn frames(n: usize) -> Vec<Frame<u8>> {
    SceneBuilder::new(Resolution::QQVGA)
        .seed(42)
        .walkers(3)
        .bimodal_fraction(0.08)
        .build()
        .render_sequence(n)
        .0
        .into_frames()
}

fn run(level: OptLevel, frames: &[Frame<u8>]) -> RunReport {
    let mut gpu = GpuMog::<f64>::new(
        frames[0].resolution(),
        MogParams::default(),
        level,
        frames[0].as_slice(),
        GpuConfig::tesla_c2075(),
    )
    .unwrap();
    gpu.process_all(&frames[1..]).unwrap()
}

#[test]
fn speedup_ladder_is_monotone_through_d() {
    // Paper Fig. 8(a): 13x -> 41x -> 57x -> 85x. Relative ordering of
    // end-to-end per-frame time must be strictly improving A > B > C > D.
    let fs = frames(6);
    let a = run(OptLevel::A, &fs).gpu_time_per_frame();
    let b = run(OptLevel::B, &fs).gpu_time_per_frame();
    let c = run(OptLevel::C, &fs).gpu_time_per_frame();
    let d = run(OptLevel::D, &fs).gpu_time_per_frame();
    assert!(
        a > 2.0 * b,
        "coalescing should win ~3x: A={a:.2e} B={b:.2e}"
    );
    assert!(b > c, "overlap must help: B={b:.2e} C={c:.2e}");
    assert!(c > d, "branch elimination must help: C={c:.2e} D={d:.2e}");
}

#[test]
fn register_reduction_beats_predication_alone() {
    // Paper: E 86x -> F 97x via occupancy.
    let fs = frames(6);
    let e = run(OptLevel::E, &fs);
    let f = run(OptLevel::F, &fs);
    assert!(e.occupancy.occupancy < f.occupancy.occupancy);
    assert!(f.gpu_time_per_frame() <= e.gpu_time_per_frame());
}

#[test]
fn memory_efficiency_trajectory_matches_fig6_and_fig7() {
    let fs = frames(5);
    let a = run(OptLevel::A, &fs);
    let b = run(OptLevel::B, &fs);
    let e = run(OptLevel::E, &fs);
    // Fig 6(a): 17% -> 78%; ours must show the same multi-x jump.
    assert!(
        a.metrics.mem_access_efficiency < 0.25,
        "A = {}",
        a.metrics.mem_access_efficiency
    );
    assert!(
        b.metrics.mem_access_efficiency > 0.55,
        "B = {}",
        b.metrics.mem_access_efficiency
    );
    // Fig 7(b): predication pushes efficiency near its peak.
    assert!(e.metrics.mem_access_efficiency > b.metrics.mem_access_efficiency);
    assert!(
        e.metrics.mem_access_efficiency > 0.85,
        "E = {}",
        e.metrics.mem_access_efficiency
    );
}

#[test]
fn store_transactions_drop_with_coalescing() {
    // Fig 6(a): 13.3M -> 2M per full-HD frame (a ~6.6x drop).
    let fs = frames(5);
    let a = run(OptLevel::A, &fs);
    let b = run(OptLevel::B, &fs);
    let ratio = a.metrics.store_transactions as f64 / b.metrics.store_transactions as f64;
    assert!(ratio > 4.0 && ratio < 12.0, "store tx ratio {ratio:.1}");
}

#[test]
fn branch_efficiency_trajectory_matches_fig7() {
    let fs = frames(8);
    let c = run(OptLevel::C, &fs);
    let d = run(OptLevel::D, &fs);
    let e = run(OptLevel::E, &fs);
    // Fig 7(a): D executes fewer branches than C (6.7M -> 6.2M per frame
    // in the paper) and in particular fewer *divergent* ones — the sort's
    // data-dependent swap/scan branches are gone.
    assert!(d.metrics.branch_slots < c.metrics.branch_slots);
    assert!(d.stats.divergent_branch_slots < c.stats.divergent_branch_slots);
    // E's predication removes the per-component match branches: a solid
    // branch-efficiency jump (paper: 99.5%; at this small, object-dense
    // test resolution the uniform-background fraction is lower, so the
    // absolute bar is lower).
    assert!(e.metrics.branch_efficiency > d.metrics.branch_efficiency);
    assert!(
        e.metrics.branch_efficiency > 0.90,
        "E = {}",
        e.metrics.branch_efficiency
    );
}

#[test]
fn occupancy_matches_paper_register_analysis() {
    let fs = frames(3);
    let c = run(OptLevel::C, &fs);
    let f = run(OptLevel::F, &fs);
    let w = run(OptLevel::Windowed { group: 4 }, &fs);
    // C (36 regs): 7 blocks = 58.3% theoretical (paper achieved: 52%).
    assert!((c.occupancy.occupancy - 28.0 / 48.0).abs() < 1e-9);
    // F (31 regs): 66.7% (paper achieved: 65%).
    assert!((f.occupancy.occupancy - 32.0 / 48.0).abs() < 1e-9);
    // W: shared-memory limited to 5 blocks = 41.7% (paper: ~40%).
    assert!((w.occupancy.occupancy - 20.0 / 48.0).abs() < 1e-9);
}

#[test]
fn windowed_group_sweep_shape() {
    // Fig 10: tiled at group 1 is *slower* than F (occupancy loss);
    // larger groups amortize parameter traffic; benefit saturates.
    let fs = frames(17);
    let f = run(OptLevel::F, &fs).kernel_time_per_frame();
    let w1 = run(OptLevel::Windowed { group: 1 }, &fs).kernel_time_per_frame();
    let w4 = run(OptLevel::Windowed { group: 4 }, &fs).kernel_time_per_frame();
    let w8 = run(OptLevel::Windowed { group: 8 }, &fs).kernel_time_per_frame();
    let w16 = run(OptLevel::Windowed { group: 16 }, &fs).kernel_time_per_frame();
    assert!(
        w1 > f,
        "tiled group 1 must lose to F: w1={w1:.2e} f={f:.2e}"
    );
    assert!(w4 < w1);
    assert!(w8 < w4);
    // Saturation: 8 -> 16 gains much less than 4 -> 8.
    let gain_48 = w4 / w8;
    let gain_816 = w8 / w16;
    assert!(
        gain_816 < gain_48,
        "gain 4->8 {gain_48:.2} vs 8->16 {gain_816:.2}"
    );
}

#[test]
fn windowed_memory_efficiency_declines_with_group_size() {
    // Fig 10(b): >90% at group 1 down toward 60% at 32 — the traffic mix
    // shifts from wide parameter accesses to narrow u8 frame accesses.
    let fs = frames(17);
    let w1 = run(OptLevel::Windowed { group: 1 }, &fs);
    let w8 = run(OptLevel::Windowed { group: 8 }, &fs);
    let w16 = run(OptLevel::Windowed { group: 16 }, &fs);
    assert!(w1.metrics.mem_access_efficiency > w8.metrics.mem_access_efficiency);
    assert!(w8.metrics.mem_access_efficiency > w16.metrics.mem_access_efficiency);
    assert!(w16.metrics.mem_access_efficiency < 0.75);
}

#[test]
fn five_gaussians_cost_more_but_profit_from_the_same_optimizations() {
    // Fig 11: 5-Gaussian MoG is slower in absolute terms at every level
    // but still gains from the algorithm-specific steps.
    let fs = frames(5);
    let run_k = |level: OptLevel, k: usize| {
        let mut gpu = GpuMog::<f64>::new(
            fs[0].resolution(),
            MogParams::new(k),
            level,
            fs[0].as_slice(),
            GpuConfig::tesla_c2075(),
        )
        .unwrap();
        gpu.process_all(&fs[1..]).unwrap()
    };
    let c3 = run_k(OptLevel::C, 3).kernel_time_per_frame();
    let c5 = run_k(OptLevel::C, 5).kernel_time_per_frame();
    let f3 = run_k(OptLevel::F, 3).kernel_time_per_frame();
    let f5 = run_k(OptLevel::F, 5).kernel_time_per_frame();
    assert!(c5 > 1.3 * c3, "5G must cost more: c3={c3:.2e} c5={c5:.2e}");
    assert!(f5 > 1.3 * f3);
    assert!(f5 < c5, "algorithm-specific opts must help 5G too");
}

#[test]
fn single_precision_is_faster_than_double() {
    // Fig 12: float F beats double F (105x vs 97x in the paper; our model
    // overshoots the gap — see EXPERIMENTS.md — but the direction holds).
    let fs = frames(5);
    let f64_time = run(OptLevel::F, &fs).kernel_time_per_frame();
    let mut gpu = GpuMog::<f32>::new(
        fs[0].resolution(),
        MogParams::default(),
        OptLevel::F,
        fs[0].as_slice(),
        GpuConfig::tesla_c2075(),
    )
    .unwrap();
    let f32_time = gpu.process_all(&fs[1..]).unwrap().kernel_time_per_frame();
    assert!(
        f32_time < f64_time,
        "f32 {f32_time:.2e} vs f64 {f64_time:.2e}"
    );
}

#[test]
fn cpu_model_reproduces_paper_cpu_numbers() {
    // The calibrated CPU model: serial full-HD frame ~0.5 s; SIMD ~1.39x;
    // 8-thread OpenMP ~2.28x (paper Section IV-A).
    let fs = frames(4);
    let report = run(OptLevel::C, &fs); // sorted kernel = serial algorithm
    let cpu = CpuModel::default();
    let per_frame_events_scale =
        Resolution::FULL_HD.pixels() as f64 / Resolution::QQVGA.pixels() as f64;
    let serial_full_hd =
        cpu.serial_time(&report.stats) / (fs.len() - 1) as f64 * per_frame_events_scale;
    // Paper: 227.3 s / 450 frames = 0.505 s/frame. Accept 25% tolerance —
    // scene statistics shift the match/mismatch mix.
    assert!(
        (serial_full_hd - 0.505).abs() / 0.505 < 0.25,
        "serial full-HD frame = {serial_full_hd:.3} s (paper 0.505 s)"
    );
    let times = cpu.times(&report.stats);
    assert!((times.serial / times.simd - 1.40).abs() < 0.05);
    assert!((times.serial / times.multi_threaded - 2.28).abs() < 0.05);
}

#[test]
fn headline_speedups_have_paper_shape() {
    // End-to-end: modelled GPU time vs modelled CPU serial time at the
    // same frame count. Paper ladder: 13, 41, 57, 85, 86, 97. We assert
    // bands, not exact values (see EXPERIMENTS.md for measured numbers).
    let fs = frames(6);
    let cpu = CpuModel::default();
    let speedup = |level: OptLevel| {
        let r = run(level, &fs);
        let serial = cpu.serial_time(&r.stats) / r.frames as f64;
        // Note: stats of the level's own kernel approximate serial CPU
        // work only for sorted levels; use level C's stats as the serial
        // reference for all.
        let _ = serial;
        r
    };
    let c_ref = run(OptLevel::C, &fs);
    let serial_per_frame = cpu.serial_time(&c_ref.stats) / c_ref.frames as f64;
    let s = |level: OptLevel| serial_per_frame / speedup(level).gpu_time_per_frame();
    let (sa, sb, sc, sf) = (
        s(OptLevel::A),
        s(OptLevel::B),
        s(OptLevel::C),
        s(OptLevel::F),
    );
    assert!(sa > 5.0 && sa < 25.0, "A speedup {sa:.0} (paper 13)");
    assert!(sb > 20.0 && sb < 60.0, "B speedup {sb:.0} (paper 41)");
    assert!(sc > 30.0 && sc < 80.0, "C speedup {sc:.0} (paper 57)");
    assert!(sf > 60.0 && sf < 140.0, "F speedup {sf:.0} (paper 97)");
    assert!(sf > sc && sc > sb && sb > sa);
}

#[test]
fn l2_cache_model_absorbs_aos_reuse() {
    // Ablation regression: with the optional L2 model on, level A's
    // interleaved records hit the cache heavily (consecutive warp slots
    // touch the same 128 B lines), while the coalesced level F only
    // benefits from load-then-store line reuse.
    let fs = frames(4);
    let run_cfg = |level: OptLevel, cfg: GpuConfig| {
        let mut gpu = GpuMog::<f64>::new(
            fs[0].resolution(),
            MogParams::default(),
            level,
            fs[0].as_slice(),
            cfg,
        )
        .unwrap();
        gpu.process_all(&fs[1..]).unwrap()
    };
    let a_off = run_cfg(OptLevel::A, GpuConfig::tesla_c2075());
    let a_on = run_cfg(OptLevel::A, mogpu::sim::GpuConfig::tesla_c2075_with_l2());
    assert!(a_on.stats.total_tx() < a_off.stats.total_tx() / 5);
    assert!(a_on.stats.l2_hits > a_on.stats.l2_misses * 5);
    let f_off = run_cfg(OptLevel::F, GpuConfig::tesla_c2075());
    let f_on = run_cfg(OptLevel::F, mogpu::sim::GpuConfig::tesla_c2075_with_l2());
    assert!(f_on.stats.total_tx() < f_off.stats.total_tx());
    assert!(f_on.stats.total_tx() > f_off.stats.total_tx() / 3);
}

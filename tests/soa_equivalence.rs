//! Bit-identity pin for the SoA interpreter rewrite.
//!
//! `tests/data/soa_golden.json` was captured from the pre-rewrite
//! (hash-map slot) interpreter and is committed; these tests re-run the
//! same workloads on the current interpreter and require *identical*
//! mask digests and warp statistics — not approximately equal: the SoA
//! restructuring is a pure representation change, so every counter and
//! every output byte must survive it untouched.
//!
//! A proptest additionally drives the production
//! [`mogpu::sim::warp::WarpAccumulator`] and the frozen
//! [`mogpu::sim::warp_reference::ReferenceAccumulator`] with identical
//! random event streams and asserts the folded [`KernelStats`] agree
//! exactly, covering slot shapes no real kernel happens to produce.

use mogpu::bench::harness::{default_params, run_level, standard_frames, SIM_RESOLUTION};
use mogpu::core::{AdaptiveGpuMog, GpuMog, OptLevel, RunReport};
use mogpu::prelude::*;
use mogpu::sim::stats::KernelStats;
use mogpu::sim::trace::{OpClass, Space};
use mogpu::sim::warp::WarpAccumulator;
use mogpu::sim::warp_reference::ReferenceAccumulator;
use proptest::prelude::*;
use serde_json::Value;
use std::panic::Location;

/// Frames per golden run; must match `soa_golden.rs`.
const FRAMES: usize = 9;

const GOLDEN: &str = include_str!("data/soa_golden.json");

fn golden() -> Value {
    serde_json::from_str(GOLDEN).expect("golden file parses")
}

fn field<'a>(v: &'a Value, key: &str) -> &'a Value {
    match v {
        Value::Object(fields) => fields
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .unwrap_or_else(|| panic!("golden file is missing key {key:?}")),
        other => panic!("expected an object at {key:?}, got {other:?}"),
    }
}

fn as_str(v: &Value) -> &str {
    match v {
        Value::String(s) => s,
        other => panic!("expected a string, got {other:?}"),
    }
}

/// FNV-1a 64-bit over all mask bytes in frame order; must match
/// `soa_golden.rs`.
fn mask_digest(report: &RunReport) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for mask in &report.masks {
        for &b in mask.as_slice() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    format!("{h:016x}")
}

/// Asserts a run matches its golden entry: same functional output
/// (digest) and the same statistics, field for field. Stats are compared
/// through canonical JSON so the golden file's parsed number variants
/// (I64 vs U64) cannot produce spurious mismatches.
fn assert_matches_golden(name: &str, report: &RunReport, entry: &Value) {
    assert_eq!(
        mask_digest(report),
        as_str(field(entry, "mask_digest")),
        "{name}: mask bytes diverged from the pre-SoA interpreter"
    );
    let got =
        serde_json::to_string_canonical(&serde_json::to_value(&report.stats).unwrap()).unwrap();
    let want = serde_json::to_string_canonical(field(entry, "stats")).unwrap();
    assert_eq!(
        got, want,
        "{name}: warp statistics diverged from the pre-SoA interpreter"
    );
}

#[test]
fn ladder_and_windowed_stats_and_masks_are_bit_identical_to_seed() {
    let g = golden();
    assert_eq!(
        as_str(field(&g, "resolution")),
        format!("{SIM_RESOLUTION}"),
        "golden was captured at a different resolution"
    );
    let frames = standard_frames(FRAMES);
    let levels = field(&g, "levels");
    for level in OptLevel::LADDER
        .into_iter()
        .chain([OptLevel::Windowed { group: 8 }])
    {
        let report = run_level::<f64>(level, default_params(3), &frames);
        assert_matches_golden(&level.name(), &report, field(levels, &level.name()));
    }
}

#[test]
fn f32_level_f_is_bit_identical_to_seed() {
    let g = golden();
    let frames = standard_frames(FRAMES);
    let report = run_level::<f32>(OptLevel::F, default_params(3), &frames);
    assert_matches_golden("f32_f", &report, field(&g, "f32_f"));
}

#[test]
fn sanitized_level_f_is_bit_identical_to_seed() {
    let g = golden();
    let frames = standard_frames(FRAMES);
    let mut gpu = GpuMog::<f64>::new(
        SIM_RESOLUTION,
        default_params(3),
        OptLevel::F,
        frames[0].as_slice(),
        GpuConfig::tesla_c2075(),
    )
    .expect("pipeline");
    gpu.set_sanitize(true);
    let report = gpu.process_all(&frames[1..]).expect("processing");
    let san = gpu.take_san_report().expect("sanitizer report");
    let entry = field(&g, "sanitized_f");
    assert_matches_golden("sanitized_f", &report, entry);
    assert_eq!(
        Value::U64(san.findings().len() as u64),
        *field(entry, "findings"),
        "sanitizer finding count diverged from the pre-SoA interpreter"
    );
}

#[test]
fn adaptive_path_is_bit_identical_to_seed() {
    let g = golden();
    let frames = SceneBuilder::new(SIM_RESOLUTION)
        .seed(0x1CC_2014)
        .walkers(3)
        .bimodal_fraction(0.25)
        .bimodal_contrast(60.0)
        .noise_sd(2.0)
        .build()
        .render_sequence(FRAMES)
        .0
        .into_frames();
    let mut adaptive = AdaptiveGpuMog::<f64>::new(
        SIM_RESOLUTION,
        default_params(5),
        frames[0].as_slice(),
        GpuConfig::tesla_c2075(),
    )
    .expect("pipeline");
    let report = adaptive.process_all(&frames[1..]).expect("processing");
    assert_matches_golden("adaptive", &report, field(&g, "adaptive"));
}

// ---- randomized accumulator equivalence ----

/// A synthetic warp event applied identically to both accumulators.
/// Site indices select from a fixed pool of genuinely `'static`
/// locations; each site keeps one event kind so slot kinds stay
/// consistent (mixing kinds at one (site, occurrence) is a kernel bug
/// both accumulators only debug-assert on).
#[derive(Debug, Clone)]
enum Ev {
    /// `begin_lane` on both.
    Lane,
    /// `end_warp` (fold + reset) on both.
    Warp,
    Op {
        site: usize,
        class: u8,
        count: u32,
    },
    Mem {
        site: usize,
        space: u8,
        write: bool,
        addr: u64,
        width: u8,
    },
    Branch {
        site: usize,
        taken: bool,
    },
    Sync {
        site: usize,
    },
}

/// Distinct static source locations standing in for kernel call sites.
/// Each `Location::caller()` expression resolves to its own line, so the
/// pool entries are distinct non-null `&'static Location`s exactly like
/// the `#[track_caller]` sites real kernels record.
fn site_pool() -> [&'static Location<'static>; 8] {
    [
        Location::caller(),
        Location::caller(),
        Location::caller(),
        Location::caller(),
        Location::caller(),
        Location::caller(),
        Location::caller(),
        Location::caller(),
    ]
}

fn arb_event() -> impl Strategy<Value = Ev> {
    (0u8..=6, 0usize..8, any::<u64>(), any::<u8>(), any::<bool>()).prop_map(
        |(kind, site, a, b, flag)| match kind {
            0 => Ev::Lane,
            1 => Ev::Warp,
            2 => Ev::Op {
                site,
                class: b % 3,
                count: (a % 65) as u32,
            },
            3 | 4 => Ev::Mem {
                site,
                space: b % 3,
                write: flag,
                // Keep addresses below 2^40 so `addr + width` cannot
                // overflow in either implementation.
                addr: a % (1 << 40),
                width: (b % 8) + 1,
            },
            5 => Ev::Branch { site, taken: flag },
            _ => Ev::Sync { site },
        },
    )
}

fn space_of(ix: u8) -> Space {
    match ix {
        0 => Space::Shared,
        1 => Space::Global,
        _ => Space::Local,
    }
}

fn class_of(ix: u8) -> OpClass {
    match ix {
        0 => OpClass::Int,
        1 => OpClass::F32,
        _ => OpClass::F64,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// For any event stream, the SoA accumulator folds exactly the same
    /// statistics as the frozen reference accumulator — including exact
    /// f64 issue-cycle equality.
    #[test]
    fn soa_accumulator_matches_reference_on_random_event_streams(
        events in proptest::collection::vec(arb_event(), 0..400),
    ) {
        let sites = site_pool();
        let cfg = GpuConfig::tesla_c2075();
        let mut soa = WarpAccumulator::new();
        let mut reference = ReferenceAccumulator::new();
        let mut soa_stats = KernelStats::default();
        let mut ref_stats = KernelStats::default();
        soa.begin_lane();
        reference.begin_lane();
        for ev in &events {
            match *ev {
                Ev::Lane => {
                    soa.begin_lane();
                    reference.begin_lane();
                }
                Ev::Warp => {
                    soa.end_warp(&cfg, &mut soa_stats);
                    reference.end_warp(&cfg, &mut ref_stats);
                    prop_assert_eq!(&soa_stats, &ref_stats);
                }
                Ev::Op { site, class, count } => {
                    // One kind per site: ops use the low half of the pool.
                    let loc = sites[site % 4];
                    soa.record_op(loc, class_of(class), count);
                    reference.record_op(loc, class_of(class), count);
                }
                Ev::Mem { site, space, write, addr, width } => {
                    let loc = sites[4 + site % 2];
                    soa.record_mem(loc, space_of(space), write, addr, width);
                    reference.record_mem(loc, space_of(space), write, addr, width);
                }
                Ev::Branch { site, taken } => {
                    let _ = site;
                    soa.record_branch(sites[6], taken);
                    reference.record_branch(sites[6], taken);
                }
                Ev::Sync { site } => {
                    let _ = site;
                    soa.record_sync(sites[7]);
                    reference.record_sync(sites[7]);
                }
            }
        }
        soa.end_warp(&cfg, &mut soa_stats);
        reference.end_warp(&cfg, &mut ref_stats);
        prop_assert_eq!(&soa_stats, &ref_stats);
    }
}

//! Integration tests for the guided-analysis advisor: the end-to-end
//! acceptance bar is that at every optimization-ladder level the top
//! advisory names the *next* optimization the paper applies, and that
//! the stall-reason decomposition is exact against the timing model.

use mogpu::prelude::*;
use mogpu::sim::dma::OverlapMode;
use mogpu::sim::occupancy::Limiter;
use mogpu::sim::{
    advise, kernel_stalls, kernel_time, roofline, AdvisorInput, Advisory, DerivedMetrics,
    KernelStats, Occupancy, Transform,
};
use proptest::prelude::*;

/// The standard ladder workload (same scene the CLI uses).
fn scene_frames(n: usize) -> Vec<Frame<u8>> {
    SceneBuilder::new(Resolution::QQVGA)
        .seed(7)
        .walkers(3)
        .build()
        .render_sequence(n)
        .0
        .into_frames()
}

fn profiled(level: OptLevel, frames: &[Frame<u8>]) -> ProfileReport {
    let mut gpu = GpuMog::<f64>::new(
        frames[0].resolution(),
        MogParams::new(3),
        level,
        frames[0].as_slice(),
        GpuConfig::tesla_c2075(),
    )
    .unwrap();
    gpu.set_profile_mode(ProfileMode::On);
    gpu.process_all(&frames[1..]).unwrap();
    gpu.take_profile_report().unwrap()
}

/// The paper's optimization ladder: at each level, the advisor must
/// rediscover the transform that produces the *next* level.
const NEXT_STEP: [(OptLevel, Transform); 6] = [
    (OptLevel::A, Transform::CoalesceMemory),
    (OptLevel::B, Transform::OverlapTransfers),
    (OptLevel::C, Transform::RemoveRankSort),
    (OptLevel::D, Transform::PredicateBranches),
    (OptLevel::E, Transform::ReduceRegisters),
    (OptLevel::F, Transform::TileSharedMemory),
];

#[test]
fn top_advisory_rediscovers_the_papers_ladder() {
    let frames = scene_frames(16);
    for (level, want) in NEXT_STEP {
        let p = profiled(level, &frames);
        let top = p
            .advisories
            .first()
            .unwrap_or_else(|| panic!("level {}: no advisories fired", p.level));
        assert_eq!(
            top.transform, want,
            "level {}: top advisory is {:?} ({}), expected {:?}",
            p.level, top.transform, top.rule, want
        );
        assert!(
            top.estimated_benefit_s > 0.0 && top.estimated_speedup > 1.0,
            "level {}: degenerate benefit {:?}",
            p.level,
            top
        );
    }
}

#[test]
fn stall_reasons_conserve_the_modelled_kernel_time() {
    let frames = scene_frames(10);
    for level in OptLevel::LADDER
        .into_iter()
        .chain([OptLevel::Windowed { group: 8 }])
    {
        let p = profiled(level, &frames);
        let total = p.timing.total;
        assert!(total > 0.0);
        // Kernel-level breakdown is exact.
        assert!(
            (p.stalls.sum() - total).abs() / total < 1e-9,
            "level {}: stall reasons sum to {} of {total} s",
            p.level,
            p.stalls.sum()
        );
        // Per-site rows partition the same total.
        let site_sum: f64 = p.site_stalls.iter().map(|r| r.stalls.sum()).sum();
        assert!(
            (site_sum - total).abs() / total < 1e-9,
            "level {}: site stalls sum to {site_sum} of {total} s",
            p.level,
        );
    }
}

#[test]
fn advise_surfaces_in_profile_report_json() {
    let frames = scene_frames(8);
    let p = profiled(OptLevel::A, &frames);
    let json = mogpu::json::to_value(&p).unwrap();
    let advisories = json["advisories"].as_array().expect("advisories array");
    assert!(!advisories.is_empty());
    assert_eq!(
        advisories[0]["transform"],
        mogpu::json::Value::String("CoalesceMemory".into())
    );
    // Roofline and stall breakdown ride along machine-readably.
    assert!(json["roofline"]["arithmetic_intensity"].as_f64().unwrap() > 0.0);
    assert!(json["stalls"]["latency_exposure"].as_f64().unwrap() > 0.0);
}

// ---- property tests over synthetic rule-engine inputs ----

fn arb_occupancy() -> impl Strategy<Value = Occupancy> {
    (1u32..=8, 1u32..=6, 0u32..4).prop_map(|(blocks, warps_per_block, which)| {
        let limiter = match which {
            0 => Limiter::Warps,
            1 => Limiter::Registers,
            2 => Limiter::SharedMemory,
            _ => Limiter::Blocks,
        };
        let warps = (blocks * warps_per_block).min(48);
        Occupancy {
            resident_blocks: blocks,
            resident_warps: warps,
            resident_threads: warps * 32,
            occupancy: warps as f64 / 48.0,
            limiter,
        }
    })
}

fn arb_stats() -> impl Strategy<Value = KernelStats> {
    (
        (
            1_000u64..200_000,
            10_000.0f64..1e6,
            0u64..1_000_000,
            1u64..100_000_000,
        ),
        (0u64..100_000, 0u64..20_000, 0u64..10_000, 0u64..10_000_000),
    )
        .prop_map(
            |((warps, issue, gld_tx, gld_bytes), (local_tx, divergent, replays, flops))| {
                KernelStats {
                    warps,
                    issue_cycles: issue,
                    global_load_tx: gld_tx,
                    global_load_bytes_requested: gld_bytes,
                    local_load_tx: local_tx,
                    local_load_bytes_requested: local_tx.saturating_mul(64),
                    branch_slots: divergent * 2 + 1,
                    divergent_branch_slots: divergent,
                    shared_replays: replays,
                    flops_f64: flops,
                    ..Default::default()
                }
            },
        )
}

fn run_rules(stats: &KernelStats, o: &Occupancy, overlap: OverlapMode) -> Vec<Advisory> {
    let cfg = GpuConfig::tesla_c2075();
    let timing = kernel_time(stats, o, &cfg);
    let stalls = kernel_stalls(stats, &timing, o);
    let roof = roofline(stats, &timing, &cfg);
    let metrics = DerivedMetrics::from_stats(stats, &cfg);
    advise(&AdvisorInput {
        stats,
        metrics: &metrics,
        occupancy: o,
        timing: &timing,
        stalls: &stalls,
        roofline: &roof,
        hotspots: &[],
        dataflow: &[],
        overlap,
        h2d_per_frame: 1e-4,
        d2h_per_frame: 1e-4,
        dma_starvation: 0.0,
        frames: 8,
        cfg: &cfg,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The rules engine is a pure function: identical inputs give
    /// identical advisories, ranked by non-increasing modelled benefit,
    /// and every advisory it emits carries a positive benefit.
    #[test]
    fn advisories_are_deterministic_and_benefit_ranked(
        stats in arb_stats(),
        o in arb_occupancy(),
        sequential in any::<bool>(),
    ) {
        let overlap = if sequential {
            OverlapMode::Sequential
        } else {
            OverlapMode::DoubleBuffered
        };
        let a = run_rules(&stats, &o, overlap);
        let b = run_rules(&stats, &o, overlap);
        prop_assert_eq!(&a, &b);
        for w in a.windows(2) {
            prop_assert!(w[0].estimated_benefit_s >= w[1].estimated_benefit_s);
        }
        for adv in &a {
            prop_assert!(adv.estimated_benefit_s > 0.0);
            prop_assert!(adv.estimated_speedup >= 1.0);
        }
    }

    /// Stall reasons partition the modelled time for *any* counter mix,
    /// not just the shipped kernels.
    #[test]
    fn synthetic_stall_reasons_conserve_kernel_time(
        stats in arb_stats(),
        o in arb_occupancy(),
    ) {
        let cfg = GpuConfig::tesla_c2075();
        let timing = kernel_time(&stats, &o, &cfg);
        let stalls = kernel_stalls(&stats, &timing, &o);
        let total = timing.total;
        prop_assert!(total > 0.0);
        prop_assert!(
            (stalls.sum() - total).abs() / total < 1e-9,
            "stall sum {} != total {}", stalls.sum(), total
        );
    }
}

//! Fleet-level integration tests: an oversubscribed fleet sheds
//! streams gracefully — attributed `frame_dropped` events, not an OOM
//! error — and the drop accounting agrees across every surface the run
//! exposes (report JSON, Prometheus exposition, JSONL event log),
//! while the streams that *were* admitted still meet their SLO.

use serde::Deserialize;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn mogpu(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_mogpu"))
        .args(args)
        .output()
        .expect("spawn mogpu")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mogpu_fleet_{tag}"));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Runs `mogpu fleet` writing both report and events, returning the
/// parsed report document and the raw event log.
fn run_fleet(dir: &Path, extra: &[&str]) -> (mogpu::json::Value, String) {
    let report_path = dir.join("fleet.json");
    let events_path = dir.join("events.jsonl");
    let mut args = vec![
        "fleet",
        "--report-out",
        report_path.to_str().unwrap(),
        "--events-out",
        events_path.to_str().unwrap(),
    ];
    args.extend_from_slice(extra);
    let out = mogpu(&args);
    assert!(
        out.status.success(),
        "stderr: {}\nstdout: {}",
        String::from_utf8_lossy(&out.stderr),
        stdout(&out)
    );
    let doc: mogpu::json::Value =
        mogpu::json::from_str(&std::fs::read_to_string(&report_path).unwrap()).unwrap();
    let log = std::fs::read_to_string(&events_path).unwrap();
    (doc, log)
}

/// Sum of every `mogpu_frames_dropped_total{...} V` sample in an
/// exposition body.
fn dropped_total(exposition: &str) -> u64 {
    exposition
        .lines()
        .filter(|l| l.starts_with("mogpu_frames_dropped_total{"))
        .map(|l| {
            l.rsplit(' ')
                .next()
                .unwrap()
                .parse::<f64>()
                .unwrap_or_else(|_| panic!("bad sample line {l:?}")) as u64
        })
        .sum()
}

/// Five offline streams (utilization 1.0 each) on a two-device fleet:
/// two streams admitted, three shed by load. The shed frame count must
/// read identically from the report JSON, the final-snapshot Prometheus
/// exposition, and the JSONL event log — and the two admitted streams
/// must still be at SLO.
#[test]
fn oversubscribed_fleet_drop_counts_agree_across_all_surfaces() {
    let dir = temp_dir("consistency");
    let (doc, log) = run_fleet(
        &dir,
        &["--devices", "c2075,hbm", "--streams", "5", "--frames", "5"],
    );

    let admitted = doc["streams_admitted"].as_f64().unwrap() as u64;
    let shed = doc["streams_shed"].as_f64().unwrap() as u64;
    let at_slo = doc["streams_at_slo"].as_f64().unwrap() as u64;
    let dropped = doc["frames_dropped"].as_f64().unwrap() as u64;
    assert_eq!(admitted, 2, "one offline stream saturates each device");
    assert_eq!(shed, 3);
    assert_eq!(dropped, 3 * 4, "every frame of every shed stream drops");
    assert_eq!(at_slo, admitted, "admitted streams stay at SLO");

    // JSONL event log: one attributed frame_dropped line per drop.
    let drop_lines: Vec<mogpu::json::Value> = log
        .lines()
        .map(|l| mogpu::json::from_str(l).unwrap())
        .filter(|v: &mogpu::json::Value| {
            v["event"] == mogpu::json::Value::String("frame_dropped".into())
        })
        .collect();
    assert_eq!(drop_lines.len() as u64, dropped);
    for line in &drop_lines {
        assert!(
            line["device"].as_str().is_some(),
            "drop event without device attribution: {line:?}"
        );
        assert!(line["stream"].as_f64().is_some());
        assert!(line["site"].as_str().is_some());
    }

    // Prometheus, replayed past the final snapshot: the cumulative drop
    // counter family sums to the same total, with real device-label
    // cardinality across the fleet.
    let report =
        <mogpu::sim::fleet::FleetReport as Deserialize>::from_json_value(&doc["report"]).unwrap();
    let exposition = mogpu::sim::fleet::prometheus_fleet(&report, usize::MAX);
    assert_eq!(dropped_total(&exposition), dropped);
    let devices: std::collections::BTreeSet<&str> = exposition
        .lines()
        .filter(|l| !l.starts_with('#'))
        .filter_map(|l| l.split("device=\"").nth(1))
        .filter_map(|rest| rest.split('"').next())
        .collect();
    assert!(
        devices.len() >= 2,
        "expected >= 2 distinct device labels, got {devices:?}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// The fleet-merged latency histograms must equal the pooled per-device
/// histograms bucket by bucket — merging is exact, not approximate.
#[test]
fn fleet_histograms_are_the_exact_pool_of_device_histograms() {
    let dir = temp_dir("histograms");
    let (doc, _) = run_fleet(
        &dir,
        &[
            "--devices",
            "c2075,embedded,hbm",
            "--streams",
            "3",
            "--frames",
            "6",
        ],
    );
    let report =
        <mogpu::sim::fleet::FleetReport as Deserialize>::from_json_value(&doc["report"]).unwrap();
    assert_eq!(report.devices.len(), 3);

    let mut pooled_frame = mogpu::sim::serving::LatencyHistogram::new();
    let mut pooled_e2e = mogpu::sim::serving::LatencyHistogram::new();
    for d in &report.devices {
        pooled_frame.merge(&d.serving.pipeline_frame_latency);
        pooled_e2e.merge(&d.serving.pipeline_e2e_latency);
    }
    assert_eq!(pooled_frame.counts, report.frame_latency.counts);
    assert_eq!(pooled_e2e.counts, report.e2e_latency.counts);
    assert!(
        pooled_frame.counts.iter().sum::<u64>() > 0,
        "histograms must not be trivially empty"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// `mogpu advise --fleet-report` replays the recorded fleet with one
/// extra device of each class and names the class to add next; on an
/// oversubscribed fleet the best advisory has a positive benefit.
#[test]
fn advise_names_the_device_class_to_add_next() {
    let dir = temp_dir("advise");
    let report_path = dir.join("fleet.json");
    let out = mogpu(&[
        "fleet",
        "--devices",
        "c2075,embedded",
        "--streams",
        "4",
        "--frames",
        "5",
        "--report-out",
        report_path.to_str().unwrap(),
    ]);
    assert!(out.status.success());

    let out = mogpu(&[
        "advise",
        "--fleet-report",
        report_path.to_str().unwrap(),
        "--json",
    ]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let doc: mogpu::json::Value = mogpu::json::from_str(stdout(&out).trim()).unwrap();
    let advisories = doc["advisories"].as_array().unwrap();
    assert_eq!(advisories.len(), 2, "one counterfactual per class");
    let best_gain = advisories[0]["streams_at_slo_gain"].as_f64().unwrap();
    assert!(
        best_gain > 0.0,
        "adding a device to an oversubscribed fleet must buy SLO attainment: {advisories:?}"
    );
    for a in advisories {
        assert!(a["class"].as_str().is_some());
        assert!(a["finding"].as_str().unwrap().contains("device"));
    }

    // The human-readable form agrees on the winner.
    let text_out = mogpu(&["advise", "--fleet-report", report_path.to_str().unwrap()]);
    assert!(text_out.status.success());
    let text = stdout(&text_out);
    assert!(
        text.contains(&format!(
            "advisor #1 add \"{}\"",
            advisories[0]["class"].as_str().unwrap()
        )),
        "text output disagrees with JSON ranking:\n{text}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Memory-constrained fleets shed by memory (with device attribution)
/// instead of failing with an out-of-memory error.
#[test]
fn memory_oversubscription_sheds_instead_of_erroring() {
    let dir = temp_dir("memory");
    let (doc, log) = run_fleet(
        &dir,
        &[
            "--devices",
            "c2075,hbm",
            "--streams",
            "2",
            "--frames",
            "4",
            "--device-mem-mb",
            "0.001",
        ],
    );
    assert_eq!(doc["streams_admitted"].as_f64().unwrap() as u64, 0);
    let report =
        <mogpu::sim::fleet::FleetReport as Deserialize>::from_json_value(&doc["report"]).unwrap();
    assert_eq!(report.shed.len(), 2);
    for s in &report.shed {
        assert_eq!(s.reason, "memory");
    }
    assert!(log.contains("\"frame_dropped\""));
    std::fs::remove_dir_all(&dir).ok();
}

//! End-to-end tests for the `sancheck` sanitizer: one deliberately buggy
//! miniature kernel per defect class, each asserted to produce exactly
//! one finding attributed to the right `file:line`, plus clean-run
//! assertions over every shipped kernel.

use mogpu::prelude::*;
use mogpu::sim::{
    launch_with, Buffer, DeviceMemory, Kernel, KernelResources, LaunchConfig, LaunchOptions,
    SanReport, ThreadCtx,
};
use std::sync::atomic::{AtomicU32, Ordering};

fn sanitized() -> LaunchOptions {
    LaunchOptions {
        sanitize: true,
        ..Default::default()
    }
}

fn run_sanitized<K: Kernel>(
    mem: &mut DeviceMemory,
    blocks: u32,
    threads_per_block: u32,
    kernel: &K,
) -> SanReport {
    let cfg = GpuConfig::tesla_c2075();
    let lc = LaunchConfig {
        blocks,
        threads_per_block,
    };
    launch_with(mem, &cfg, lc, kernel, sanitized())
        .expect("launch")
        .sanitizer
        .expect("sanitize was requested")
}

/// The single finding of a seeded-bug run, checked against the line the
/// kernel recorded for its buggy access.
fn sole_finding(report: &SanReport, line: &AtomicU32) -> mogpu::sim::Finding {
    assert_eq!(
        report.len(),
        1,
        "expected exactly one finding, got: {report:?}"
    );
    let f = report.findings()[0].clone();
    let expect = format!("sanitizer.rs:{}", line.load(Ordering::Relaxed));
    let src = f.source.as_deref().expect("finding has a resolved source");
    assert!(
        src.ends_with(&expect),
        "finding attributed to {src}, expected ...{expect}"
    );
    f
}

const SMALL: KernelResources = KernelResources {
    regs_per_thread: 8,
    shared_bytes_per_block: 0,
    local_f64_slots: 0,
};

// ---------------------------------------------------------------- memcheck

#[test]
fn memcheck_catches_oob_global_store_at_site() {
    static BUG_LINE: AtomicU32 = AtomicU32::new(0);
    struct OobStore {
        buf: Buffer,
    }
    impl Kernel for OobStore {
        fn resources(&self) -> KernelResources {
            SMALL
        }
        fn run(&self, ctx: &mut ThreadCtx<'_>) {
            if ctx.global_thread_id() == 0 {
                BUG_LINE.store(line!() + 1, Ordering::Relaxed);
                ctx.st_f64(self.buf, 16, 1.0); // buffer holds 16 elements
            }
        }
    }
    let mut mem = DeviceMemory::new(1 << 20);
    let buf = mem.alloc_array::<f64>(16).unwrap();
    let report = run_sanitized(&mut mem, 1, 32, &OobStore { buf });
    let f = sole_finding(&report, &BUG_LINE);
    assert_eq!(f.kind, mogpu::sim::CheckKind::Memcheck);
    assert_eq!(f.occurrences, 1);
    assert!(
        f.message.contains("out of bounds"),
        "message: {}",
        f.message
    );
}

// --------------------------------------------------------------- racecheck

#[test]
fn racecheck_catches_unsynced_cross_lane_read_at_site() {
    static BUG_LINE: AtomicU32 = AtomicU32::new(0);
    struct Race {
        out: Buffer,
    }
    impl Kernel for Race {
        fn resources(&self) -> KernelResources {
            KernelResources {
                regs_per_thread: 8,
                shared_bytes_per_block: 64,
                local_f64_slots: 0,
            }
        }
        fn run(&self, ctx: &mut ThreadCtx<'_>) {
            let t = ctx.thread_idx();
            ctx.sh_st_u8(t, t as u8);
            // Threads t > 0 read their neighbor's byte with no barrier in
            // between: a write-read race. Thread 0 re-reads its own byte
            // (no conflict, and never an uninitialized one).
            let peer = t.saturating_sub(1);
            BUG_LINE.store(line!() + 1, Ordering::Relaxed);
            let v = ctx.sh_ld_u8(peer);
            ctx.st_u8(self.out, t, v);
        }
    }
    let mut mem = DeviceMemory::new(1 << 20);
    let out = mem.alloc_array::<u8>(64).unwrap();
    let report = run_sanitized(&mut mem, 1, 64, &Race { out });
    let f = sole_finding(&report, &BUG_LINE);
    assert_eq!(f.kind, mogpu::sim::CheckKind::Racecheck);
    assert_eq!(f.occurrences, 63, "threads 1..64 each race once");
    assert!(
        f.message.contains("same barrier interval"),
        "message: {}",
        f.message
    );
}

#[test]
fn racecheck_stays_quiet_when_a_barrier_separates_the_lanes() {
    struct Synced {
        out: Buffer,
    }
    impl Kernel for Synced {
        fn resources(&self) -> KernelResources {
            KernelResources {
                regs_per_thread: 8,
                shared_bytes_per_block: 64,
                local_f64_slots: 0,
            }
        }
        fn run(&self, ctx: &mut ThreadCtx<'_>) {
            let t = ctx.thread_idx();
            ctx.sh_st_u8(t, t as u8);
            ctx.sync();
            let v = ctx.sh_ld_u8(t.saturating_sub(1));
            ctx.st_u8(self.out, t, v);
        }
    }
    let mut mem = DeviceMemory::new(1 << 20);
    let out = mem.alloc_array::<u8>(64).unwrap();
    let report = run_sanitized(&mut mem, 1, 64, &Synced { out });
    assert!(
        report.is_clean(),
        "barrier-ordered flow is clean: {report:?}"
    );
}

// --------------------------------------------------------------- synccheck

#[test]
fn synccheck_catches_divergent_barrier_at_minority_site() {
    static BUG_LINE: AtomicU32 = AtomicU32::new(0);
    struct Divergent {
        out: Buffer,
    }
    impl Kernel for Divergent {
        fn resources(&self) -> KernelResources {
            KernelResources {
                regs_per_thread: 8,
                shared_bytes_per_block: 8,
                local_f64_slots: 0,
            }
        }
        fn run(&self, ctx: &mut ThreadCtx<'_>) {
            let t = ctx.thread_idx();
            if t == 0 {
                // Only thread 0 syncs here — the minority site the
                // finding must be attributed to.
                BUG_LINE.store(line!() + 1, Ordering::Relaxed);
                ctx.sync();
            } else {
                ctx.sync();
            }
            ctx.st_u8(self.out, t, t as u8);
        }
    }
    let mut mem = DeviceMemory::new(1 << 20);
    let out = mem.alloc_array::<u8>(32).unwrap();
    let report = run_sanitized(&mut mem, 1, 32, &Divergent { out });
    let f = sole_finding(&report, &BUG_LINE);
    assert_eq!(f.kind, mogpu::sim::CheckKind::Synccheck);
    assert!(
        f.message.contains("distinct sync() sites"),
        "message: {}",
        f.message
    );
}

#[test]
fn synccheck_allows_early_exit_before_a_barrier() {
    // CUDA semantics: threads that returned before the barrier don't
    // participate; the remaining threads all sync at one site.
    struct EarlyExit {
        out: Buffer,
    }
    impl Kernel for EarlyExit {
        fn resources(&self) -> KernelResources {
            KernelResources {
                regs_per_thread: 8,
                shared_bytes_per_block: 8,
                local_f64_slots: 0,
            }
        }
        fn run(&self, ctx: &mut ThreadCtx<'_>) {
            let t = ctx.thread_idx();
            if t >= 16 {
                return;
            }
            ctx.sync();
            ctx.st_u8(self.out, t, 1);
        }
    }
    let mut mem = DeviceMemory::new(1 << 20);
    let out = mem.alloc_array::<u8>(32).unwrap();
    let report = run_sanitized(&mut mem, 1, 32, &EarlyExit { out });
    assert!(
        report.is_clean(),
        "early exit is not divergence: {report:?}"
    );
}

// --------------------------------------------------------------- initcheck

#[test]
fn initcheck_catches_uninitialized_shared_read_at_site() {
    static BUG_LINE: AtomicU32 = AtomicU32::new(0);
    struct UninitShared {
        out: Buffer,
    }
    impl Kernel for UninitShared {
        fn resources(&self) -> KernelResources {
            KernelResources {
                regs_per_thread: 8,
                shared_bytes_per_block: 64,
                local_f64_slots: 0,
            }
        }
        fn run(&self, ctx: &mut ThreadCtx<'_>) {
            let t = ctx.thread_idx();
            if t == 0 {
                // No thread has written shared memory: its contents are
                // undefined at block start.
                BUG_LINE.store(line!() + 1, Ordering::Relaxed);
                let v = ctx.sh_ld_f64(0);
                ctx.st_f64(self.out, 0, v);
            }
        }
    }
    let mut mem = DeviceMemory::new(1 << 20);
    let out = mem.alloc_array::<f64>(32).unwrap();
    let report = run_sanitized(&mut mem, 1, 32, &UninitShared { out });
    let f = sole_finding(&report, &BUG_LINE);
    assert_eq!(f.kind, mogpu::sim::CheckKind::Initcheck);
    assert!(
        f.message.contains("no thread has written"),
        "message: {}",
        f.message
    );
}

#[test]
fn initcheck_catches_never_written_global_read() {
    static BUG_LINE: AtomicU32 = AtomicU32::new(0);
    struct UninitGlobal {
        scratch: Buffer,
        out: Buffer,
    }
    impl Kernel for UninitGlobal {
        fn resources(&self) -> KernelResources {
            SMALL
        }
        fn run(&self, ctx: &mut ThreadCtx<'_>) {
            if ctx.global_thread_id() == 0 {
                // `scratch` was allocated but never uploaded or stored to.
                BUG_LINE.store(line!() + 1, Ordering::Relaxed);
                let v = ctx.ld_f64(self.scratch, 3);
                ctx.st_f64(self.out, 0, v);
            }
        }
    }
    let mut mem = DeviceMemory::new(1 << 20);
    let scratch = mem.alloc_array::<f64>(8).unwrap();
    let out = mem.alloc_array::<f64>(8).unwrap();
    let report = run_sanitized(&mut mem, 1, 32, &UninitGlobal { scratch, out });
    let f = sole_finding(&report, &BUG_LINE);
    assert_eq!(f.kind, mogpu::sim::CheckKind::Initcheck);
}

// ------------------------------------------------- shipped kernels: clean

#[test]
fn every_shipped_kernel_runs_clean_under_the_sanitizer() {
    let res = Resolution::TINY;
    let scene = SceneBuilder::new(res).seed(11).walkers(2).build();
    let frames = scene.render_sequence(5).0.into_frames();

    for level in mogpu::core::OptLevel::LADDER
        .into_iter()
        .chain([mogpu::core::OptLevel::Windowed { group: 4 }])
    {
        let mut gpu = GpuMog::<f64>::new(
            res,
            MogParams::default(),
            level,
            frames[0].as_slice(),
            GpuConfig::tesla_c2075(),
        )
        .unwrap();
        gpu.set_sanitize(true);
        gpu.process_all(&frames[1..]).unwrap();
        let report = gpu.take_san_report().expect("sanitize was on");
        assert!(
            report.is_clean(),
            "level {} is not clean:\n{}",
            level.name(),
            report.table()
        );
    }

    let mut adaptive = mogpu::core::AdaptiveGpuMog::<f64>::new(
        res,
        MogParams::default(),
        frames[0].as_slice(),
        GpuConfig::tesla_c2075(),
    )
    .unwrap();
    adaptive.set_sanitize(true);
    adaptive.process_all(&frames[1..]).unwrap();
    let report = adaptive.take_san_report().expect("sanitize was on");
    assert!(report.is_clean(), "adaptive:\n{}", report.table());

    let (_, truth) = scene.render(3);
    for op in [
        mogpu::core::kernels::MorphOp::Erode,
        mogpu::core::kernels::MorphOp::Dilate,
    ] {
        let (_, launch_report) = mogpu::core::kernels::gpu_morph_with(
            &truth,
            op,
            &GpuConfig::tesla_c2075(),
            sanitized(),
        )
        .unwrap();
        let report = launch_report.sanitizer.expect("sanitize was requested");
        assert!(report.is_clean(), "morph {op:?}:\n{}", report.table());
    }
}

#[test]
fn sanitize_does_not_change_shipped_kernel_output() {
    let res = Resolution::TINY;
    let frames = SceneBuilder::new(res)
        .seed(12)
        .walkers(2)
        .build()
        .render_sequence(4)
        .0
        .into_frames();
    let mut plain = GpuMog::<f64>::new(
        res,
        MogParams::default(),
        mogpu::core::OptLevel::F,
        frames[0].as_slice(),
        GpuConfig::tesla_c2075(),
    )
    .unwrap();
    let expect = plain.process_all(&frames[1..]).unwrap();
    let mut checked = GpuMog::<f64>::new(
        res,
        MogParams::default(),
        mogpu::core::OptLevel::F,
        frames[0].as_slice(),
        GpuConfig::tesla_c2075(),
    )
    .unwrap();
    checked.set_sanitize(true);
    let got = checked.process_all(&frames[1..]).unwrap();
    assert_eq!(expect.masks, got.masks);
    assert_eq!(expect.stats, got.stats);
}

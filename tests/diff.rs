//! Integration tests of the differential-profiling engine (`sim::diff`):
//! exactness invariants on real profile reports, attribution quality on
//! the paper's A-vs-F gap, and the bench-gate drift attribution path.

use mogpu::bench::baseline::{
    attach_reports, attribute_failures, check, measure, write_baseline, BenchConfig, Tolerances,
};
use mogpu::bench::harness::{default_params, profile_level, standard_frames};
use mogpu::core::OptLevel;
use mogpu::json::Value;
use mogpu::sim::{diff_values, GpuConfig};
use proptest::prelude::*;

fn cfg() -> GpuConfig {
    GpuConfig::tesla_c2075()
}

/// Profiles one optimization level on the standard workload and returns
/// the serialized report — exactly what `mogpu profile --report-out`
/// writes.
fn report_value(level: OptLevel, frames: usize) -> Value {
    let frames = standard_frames(frames);
    let report = profile_level::<f64>(level, default_params(3), &frames);
    mogpu::json::to_value(&report).expect("report serializes")
}

#[test]
fn self_diff_is_all_zeros_and_byte_stable() {
    let a = report_value(OptLevel::F, 4);
    let d1 = diff_values(&a, &a, "run1", "run2", &cfg()).unwrap();
    assert_eq!(d1.kind, "profile");
    assert_eq!(d1.kernels.len(), 1);
    let k = &d1.kernels[0];
    assert_eq!(k.time_delta_s, 0.0);
    assert_eq!(k.stall_delta_sum_s, 0.0);
    assert_eq!(k.attributed_fraction, 1.0);
    for s in &k.stalls {
        assert_eq!(
            s.delta_s, 0.0,
            "stall bucket {} moved on a self-diff",
            s.reason
        );
    }
    for c in &k.counters {
        assert_eq!(c.delta, 0.0, "counter {} moved on a self-diff", c.counter);
        assert_eq!(c.contribution_s, 0.0);
    }

    // Canonical serialization is byte-stable across runs of the engine.
    let d2 = diff_values(&a, &a, "run1", "run2", &cfg()).unwrap();
    let t1 = mogpu::json::to_string_canonical_pretty(&d1).unwrap();
    let t2 = mogpu::json::to_string_canonical_pretty(&d2).unwrap();
    assert_eq!(t1, t2);
}

#[test]
fn diffs_compose_along_the_ladder() {
    // delta(A->C) + delta(C->F) must reproduce delta(A->F), bucket by
    // bucket: each delta is an independent subtraction of the same
    // per-side values, so composition holds to rounding error.
    let a = report_value(OptLevel::A, 4);
    let c = report_value(OptLevel::C, 4);
    let f = report_value(OptLevel::F, 4);
    let ac = &diff_values(&a, &c, "A", "C", &cfg()).unwrap().kernels[0];
    let cf = &diff_values(&c, &f, "C", "F", &cfg()).unwrap().kernels[0];
    let af = &diff_values(&a, &f, "A", "F", &cfg()).unwrap().kernels[0];

    let scale = af.time_a_s.abs().max(af.time_b_s.abs());
    assert!(
        ((ac.time_delta_s + cf.time_delta_s) - af.time_delta_s).abs() <= 1e-12 * scale,
        "kernel deltas do not compose: {} + {} != {}",
        ac.time_delta_s,
        cf.time_delta_s,
        af.time_delta_s
    );
    for ((x, y), z) in ac.stalls.iter().zip(&cf.stalls).zip(&af.stalls) {
        assert_eq!(x.reason, z.reason);
        assert!(
            ((x.delta_s + y.delta_s) - z.delta_s).abs() <= 1e-12 * scale,
            "bucket {} does not compose",
            z.reason
        );
    }
}

#[test]
fn a_vs_f_attributes_the_gap_to_named_stalls_with_file_line_evidence() {
    // The acceptance bar of the issue: diffing the unoptimized level A
    // against the fully optimized level F must attribute at least 90% of
    // the kernel-time delta to named stall buckets backed by file:line
    // site evidence, and the top counterfactually-priced counter must be
    // a global-memory coalescing counter (the paper's chief effect).
    let a = report_value(OptLevel::A, 8);
    let f = report_value(OptLevel::F, 8);
    let d = diff_values(&a, &f, "A", "F", &cfg()).unwrap();
    let k = &d.kernels[0];

    assert!(k.time_delta_s < 0.0, "F must be faster than A");
    // Conservation: stall buckets partition the kernel time on each side.
    let scale = k.time_a_s.max(k.time_b_s);
    assert!(
        (k.stall_delta_sum_s - k.time_delta_s).abs() <= 1e-9 * scale,
        "stall deltas ({}) do not sum to the kernel delta ({})",
        k.stall_delta_sum_s,
        k.time_delta_s
    );
    assert!(
        k.attributed_fraction >= 0.9,
        "only {:.1}% of the delta landed on resolved file:line sites",
        100.0 * k.attributed_fraction
    );
    let top_site = &k.sites[0];
    assert!(
        top_site.source.contains(".rs:"),
        "top site carries no file:line: {:?}",
        top_site.source
    );
    let top_counter = &k.counters[0];
    assert!(
        top_counter.counter.starts_with("global_"),
        "top priced counter is {:?}, expected a global-memory coalescing counter",
        top_counter.counter
    );
}

#[test]
fn mismatched_document_families_are_rejected() {
    let prof = report_value(OptLevel::F, 2);
    let bench = mogpu::json::to_value(&measure(
        &BenchConfig {
            frames: 2,
            k: 3,
            streams: 2,
        },
        Tolerances::default(),
    ))
    .unwrap();
    let err = diff_values(&prof, &bench, "a", "b", &cfg()).unwrap_err();
    assert!(err.contains("cannot diff"), "unexpected error: {err}");
}

#[test]
fn bench_gate_failure_names_the_moved_counter() {
    let dir = std::env::temp_dir().join("mogpu_diff_bench_attr");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("baseline.json");
    let config = BenchConfig {
        frames: 2,
        k: 3,
        streams: 2,
    };
    let mut baseline = measure(&config, Tolerances::default());
    attach_reports(&mut baseline, &path).unwrap();
    write_baseline(&baseline, &path).unwrap();
    assert_eq!(baseline.reports.len(), baseline.levels.len());

    // Seed a regression: the recorded fps says the code used to be 10%
    // faster, and the stored level-F report says stores used to coalesce
    // into fewer transactions. The gate must fail and the attribution
    // must name the moved counter.
    baseline.levels.get_mut("F").unwrap().fps *= 1.1;
    let stored = dir.join("reports").join("F.json");
    let mut doc: Value = mogpu::json::from_str(&std::fs::read_to_string(&stored).unwrap()).unwrap();
    {
        let Value::Object(entries) = &mut doc else {
            panic!("stored report is not an object")
        };
        let Value::Object(stats) = &mut entries
            .iter_mut()
            .find(|(k, _)| k == "stats")
            .expect("stored report has stats")
            .1
        else {
            panic!("stats is not an object")
        };
        let tx = &mut stats
            .iter_mut()
            .find(|(k, _)| k == "global_store_tx")
            .expect("stats has global_store_tx")
            .1;
        let old = tx.as_u64().unwrap();
        *tx = Value::U64(old / 2);
    }
    std::fs::write(
        &stored,
        mogpu::json::to_string_canonical_pretty(&doc).unwrap(),
    )
    .unwrap();

    let current = measure(&config, baseline.tolerances);
    let report = check(&baseline, &current);
    assert!(!report.pass, "seeded regression passed the gate");
    let diff = attribute_failures(&baseline, &report, &path)
        .unwrap()
        .expect("failing gate produces a diff");
    let k = diff
        .kernels
        .iter()
        .find(|k| k.a_level == "F")
        .expect("level F is attributed");
    assert_eq!(
        k.counters[0].counter, "global_store_tx",
        "top counter: {:?}",
        k.counters
    );
    assert!(k.counters[0].contribution_s > 0.0);
    std::fs::remove_dir_all(&dir).ok();
}

/// Builds a minimal profile document from raw counters; `timing` and
/// `stalls` are absent, so the engine recomputes both through
/// `kernel_time`/`kernel_stalls` — the same path the conservation
/// invariant must survive for arbitrary inputs.
fn raw_side(issue: f64, load_tx: u64, store_tx: u64, spill_tx: u64, warps: u64) -> Value {
    use mogpu::sim::{occupancy, KernelResources, KernelStats, LaunchConfig};
    let stats = KernelStats {
        issue_cycles: issue,
        warps,
        lanes: warps * 32,
        blocks: warps.div_ceil(8).max(1),
        global_load_tx: load_tx,
        global_store_tx: store_tx,
        local_load_tx: spill_tx,
        local_store_tx: spill_tx,
        global_load_bytes_requested: load_tx * 128,
        global_store_bytes_requested: store_tx * 128,
        ..Default::default()
    };
    let occ = occupancy(
        &cfg(),
        &LaunchConfig {
            blocks: stats.blocks as u32,
            threads_per_block: 256,
        },
        &KernelResources {
            regs_per_thread: 32,
            shared_bytes_per_block: 0,
            local_f64_slots: 0,
        },
    )
    .expect("valid launch");
    Value::Object(vec![
        ("stats".into(), mogpu::json::to_value(&stats).unwrap()),
        ("occupancy".into(), mogpu::json::to_value(&occ).unwrap()),
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Stall-bucket deltas always sum to the kernel-time delta, whatever
    /// the two sides' counters are.
    #[test]
    fn stall_deltas_always_conserve_the_kernel_delta(
        issue_a in 1.0e3f64..1.0e7,
        issue_b in 1.0e3f64..1.0e7,
        load_a in 1u64..1_000_000,
        load_b in 1u64..1_000_000,
        store_a in 0u64..1_000_000,
        store_b in 0u64..1_000_000,
        spill_a in 0u64..100_000,
        spill_b in 0u64..100_000,
        warps_a in 100u64..1_000_000,
        warps_b in 100u64..1_000_000,
    ) {
        let a = raw_side(issue_a, load_a, store_a, spill_a, warps_a);
        let b = raw_side(issue_b, load_b, store_b, spill_b, warps_b);
        let d = diff_values(&a, &b, "a", "b", &cfg()).unwrap();
        let k = &d.kernels[0];
        let scale = k.time_a_s.abs().max(k.time_b_s.abs()).max(1e-30);
        prop_assert!(
            (k.stall_delta_sum_s - k.time_delta_s).abs() <= 1e-9 * scale,
            "sum {} vs delta {}", k.stall_delta_sum_s, k.time_delta_s
        );
        // And per side: the buckets partition each side's kernel time.
        let sum_a: f64 = k.stalls.iter().map(|s| s.a_s).sum();
        let sum_b: f64 = k.stalls.iter().map(|s| s.b_s).sum();
        prop_assert!((sum_a - k.time_a_s).abs() <= 1e-9 * scale);
        prop_assert!((sum_b - k.time_b_s).abs() <= 1e-9 * scale);
    }
}

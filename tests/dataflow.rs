//! End-to-end tests of the cross-kernel dataflow tracer: byte
//! conservation on a real pipeline, the exported forms (DOT, canonical
//! JSON, Prometheus counters), and the fusion advisory the graph feeds.

use mogpu::prelude::*;
use mogpu::sim::NodeKind;

fn scene(n: usize) -> Vec<Frame<u8>> {
    SceneBuilder::new(Resolution::QQVGA)
        .seed(7)
        .walkers(3)
        .build()
        .render_sequence(n)
        .0
        .into_frames()
}

fn traced_graph(level: OptLevel, frames: &[Frame<u8>]) -> mogpu::sim::DataflowGraph {
    let mut gpu = GpuMog::<f64>::new(
        frames[0].resolution(),
        MogParams::default(),
        level,
        frames[0].as_slice(),
        GpuConfig::tesla_c2075(),
    )
    .unwrap();
    gpu.enable_dataflow();
    gpu.enable_morphology().unwrap();
    gpu.process_all(&frames[1..]).unwrap();
    gpu.dataflow_graph().expect("dataflow was enabled")
}

/// Every byte is accounted for, integer-exactly: a node's stores split
/// into consumed + dead + live-at-exit, and no edge carries more than
/// its producer stored or its consumer read.
#[test]
fn bytes_are_conserved_across_the_full_pipeline() {
    let frames = scene(8);
    for level in [OptLevel::A, OptLevel::F] {
        let graph = traced_graph(level, &frames);
        assert!(graph.nodes.len() > 10, "level {level}");
        for node in &graph.nodes {
            assert_eq!(
                node.stored_bytes,
                node.consumed_bytes + node.dead_store_bytes + node.live_at_exit_bytes,
                "level {level}, node {}",
                node.name
            );
        }
        let mut consumed = vec![0u64; graph.nodes.len()];
        for e in &graph.edges {
            assert!(e.bytes <= graph.nodes[e.producer].stored_bytes);
            assert!(e.bytes <= graph.nodes[e.consumer].read_bytes);
            consumed[e.producer] += e.bytes;
        }
        // Per-producer edge totals can overcount consumed bytes only
        // through fan-out (two consumers of one store); each single
        // edge is bounded above by what the producer ever stored.
        for (i, node) in graph.nodes.iter().enumerate() {
            if consumed[i] > 0 {
                assert!(node.stored_bytes > 0, "edges out of a storeless node");
            }
        }
    }
}

/// The morphology open reads the MoG foreground mask: the aggregated
/// candidate list is exactly that one producer->consumer pair, with one
/// pair per processed frame.
#[test]
fn the_fusion_candidate_is_the_mog_to_morphology_edge() {
    let frames = scene(8);
    let graph = traced_graph(OptLevel::F, &frames);
    let cands = graph.fusion_candidates();
    assert_eq!(cands.len(), 1, "{cands:?}");
    let c = &cands[0];
    assert_eq!(c.producer, "mog-update");
    assert_eq!(c.consumer, "morphology");
    assert_eq!(c.pairs, frames.len() - 1);
    assert!(c.edge_bytes > 0);
    assert!(c.edge_bytes <= c.producer_stored_bytes);
    assert!(c.edge_bytes <= c.consumer_read_bytes);
    // The mask is one byte per pixel per frame.
    let mask_bytes = (Resolution::QQVGA.pixels() * (frames.len() - 1)) as u64;
    assert_eq!(c.edge_bytes, mask_bytes);
}

/// Uploaded frame data is read by the MoG kernel, never re-read from
/// host twice, and dead stores show up where the pipeline genuinely
/// overwrites without reading (per-frame mask overwritten next frame).
#[test]
fn host_edges_and_dead_stores_are_attributed() {
    let frames = scene(6);
    let graph = traced_graph(OptLevel::F, &frames);
    let uploads: Vec<_> = graph
        .nodes
        .iter()
        .filter(|n| n.kind == NodeKind::HostUpload)
        .collect();
    // host-init plus one upload per processed frame.
    assert_eq!(uploads.len(), frames.len());
    for up in &uploads {
        assert!(
            up.stored_bytes > 0 && up.dead_store_bytes == 0,
            "every uploaded byte must be consumed: {} has {} dead",
            up.name,
            up.dead_store_bytes
        );
    }
    let downloads: Vec<_> = graph
        .nodes
        .iter()
        .filter(|n| n.kind == NodeKind::HostDownload)
        .collect();
    assert_eq!(downloads.len(), frames.len() - 1);
    for dl in &downloads {
        assert!(dl.read_bytes > 0, "download must read device memory");
    }
}

/// All three machine-readable exports agree with the graph.
#[test]
fn exports_are_consistent_with_the_graph() {
    let frames = scene(6);
    let graph = traced_graph(OptLevel::F, &frames);

    let dot = graph.to_dot();
    assert!(dot.starts_with("digraph dataflow {"));
    assert_eq!(
        dot.matches(" -> ").count(),
        graph.edges.len(),
        "one DOT arrow per edge"
    );

    let json = graph.to_json();
    assert_eq!(
        json.get("nodes").and_then(|n| n.as_array()).unwrap().len(),
        graph.nodes.len()
    );
    assert_eq!(
        json.get("edges").and_then(|e| e.as_array()).unwrap().len(),
        graph.edges.len()
    );
    // Canonical serialization is deterministic.
    let a = mogpu::json::to_string_canonical(&json).unwrap();
    let b = mogpu::json::to_string_canonical(&graph.to_json()).unwrap();
    assert_eq!(a, b);

    let prom = graph.prometheus();
    assert!(prom.contains("# TYPE mogpu_dataflow_edge_bytes counter"));
    assert!(prom.contains("# TYPE mogpu_dataflow_dead_store_bytes counter"));
    let total_edge_bytes: u64 = graph.edges.iter().map(|e| e.bytes).sum();
    assert!(
        prom.contains("mogpu_dataflow_edge_bytes{"),
        "labelled edge samples missing:\n{prom}"
    );
    assert!(total_edge_bytes > 0);
}

/// The graph is observational: recording it must not move a single bit
/// of output or a single profiler counter.
#[test]
fn tracing_is_transparent_to_the_frozen_pipeline() {
    let frames = scene(8);
    let run = |trace: bool| {
        let mut gpu = GpuMog::<f64>::new(
            Resolution::QQVGA,
            MogParams::default(),
            OptLevel::F,
            frames[0].as_slice(),
            GpuConfig::tesla_c2075(),
        )
        .unwrap();
        if trace {
            gpu.enable_dataflow();
        }
        gpu.process_all(&frames[1..]).unwrap()
    };
    let plain = run(false);
    let traced = run(true);
    assert_eq!(plain.masks, traced.masks);
    assert_eq!(plain.stats, traced.stats);
}

//! End-to-end tests of the `mogpu` binary: help coverage, error paths,
//! the Prometheus metrics output, and the bench regression gate.

use std::path::PathBuf;
use std::process::{Command, Output};

fn mogpu(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_mogpu"))
        .args(args)
        .output()
        .expect("spawn mogpu")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mogpu_cli_{tag}"));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn no_args_prints_help_listing_every_subcommand() {
    let out = mogpu(&[]);
    assert!(out.status.success(), "no-arg invocation must exit 0");
    let help = stdout(&out);
    for cmd in [
        "info", "demo", "ladder", "run", "profile", "advise", "diff", "dataflow", "streams",
        "fleet", "serve", "check", "metrics", "bench", "help",
    ] {
        assert!(
            help.contains(&format!("\n    {cmd} ")),
            "help does not list subcommand {cmd:?}:\n{help}"
        );
    }
    assert_eq!(stdout(&mogpu(&["help"])), help);
}

#[test]
fn unknown_command_fails_with_a_pointer_to_help() {
    let out = mogpu(&["frobnicate"]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(err.contains("unknown command"), "stderr: {err}");
    assert!(err.contains("mogpu help"), "stderr: {err}");
}

#[test]
fn run_without_input_writes_prometheus_metrics() {
    let dir = temp_dir("metrics");
    let prom = dir.join("m.prom");
    let out = mogpu(&[
        "run",
        "--level",
        "W",
        "--frames",
        "5",
        "--metrics-out",
        prom.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&prom).unwrap();
    assert!(text.starts_with("# HELP "), "exposition head: {text:?}");
    assert!(text.contains("# TYPE mogpu_sm_occupancy gauge"));
    assert!(text.contains("mogpu_dram_bandwidth_bytes_per_second{pipeline=\"level W(8)\""));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn metrics_subcommand_emits_an_exposition_to_stdout() {
    let out = mogpu(&["metrics", "--frames", "4", "--level", "C"]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.starts_with("# HELP "));
    assert!(text.contains("# TYPE mogpu_dram_bytes_total counter"));
}

#[test]
fn metrics_exposition_includes_per_kernel_gauges() {
    let out = mogpu(&["metrics", "--frames", "4", "--level", "A"]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("# TYPE mogpu_kernel_branch_efficiency gauge"));
    assert!(text.contains("mogpu_kernel_gld_efficiency{pipeline=\"level A\"}"));
    assert!(
        text.contains("mogpu_kernel_occupancy{pipeline=\"level A\",limiter=\"Registers\"}"),
        "missing occupancy gauge with limiter label:\n{text}"
    );
}

#[test]
fn advise_exits_zero_with_findings_and_ranks_the_papers_next_step() {
    let out = mogpu(&["advise", "--level", "A", "--frames", "8"]);
    assert!(
        out.status.success(),
        "findings must not fail the command; stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = stdout(&out);
    assert!(text.contains("#1 coalesce-global-memory -> CoalesceMemory"));
    assert!(text.contains("site: "), "no file:line evidence:\n{text}");

    let json_out = mogpu(&["advise", "--level", "A", "--frames", "8", "--json"]);
    assert!(json_out.status.success());
    let doc: mogpu::json::Value = mogpu::json::from_str(stdout(&json_out).trim()).unwrap();
    assert_eq!(doc["launchable"], mogpu::json::Value::Bool(true));
    let advisories = doc["advisories"].as_array().unwrap();
    assert_eq!(
        advisories[0]["transform"],
        mogpu::json::Value::String("CoalesceMemory".into())
    );
}

#[test]
fn advise_at_level_f_ranks_kernel_fusion_from_the_dataflow_graph() {
    let out = mogpu(&["advise", "--level", "F", "--frames", "8", "--json"]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let doc: mogpu::json::Value = mogpu::json::from_str(stdout(&out).trim()).unwrap();
    let advisories = doc["advisories"].as_array().unwrap();
    assert!(!advisories.is_empty(), "level F must still advise fusion");
    assert_eq!(
        advisories[0]["transform"],
        mogpu::json::Value::String("FuseKernels".into())
    );
    let benefit = advisories[0]["estimated_benefit_s"].as_f64().unwrap();
    assert!(benefit > 0.0, "fusion benefit must be positive: {benefit}");
}

#[test]
fn dataflow_rejects_unknown_options() {
    let out = mogpu(&["dataflow", "--frames", "6", "--bogus"]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(err.contains("unknown dataflow option"), "stderr: {err}");
}

#[test]
fn dataflow_json_is_byte_stable_and_dot_names_the_kernels() {
    let first = mogpu(&["dataflow", "--frames", "6", "--json"]);
    assert!(
        first.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&first.stderr)
    );
    let second = mogpu(&["dataflow", "--frames", "6", "--json"]);
    assert!(second.status.success());
    assert_eq!(
        first.stdout, second.stdout,
        "dataflow --json must be byte-stable across identical runs"
    );
    let doc: mogpu::json::Value = mogpu::json::from_str(stdout(&first).trim()).unwrap();
    assert!(!doc["edges"].as_array().unwrap().is_empty());
    assert!(!doc["nodes"].as_array().unwrap().is_empty());

    let dot = stdout(&mogpu(&["dataflow", "--frames", "6"]));
    assert!(dot.starts_with("digraph dataflow {"), "dot head: {dot:?}");
    assert!(dot.contains("mog-update"), "dot must name the MoG kernel");
    assert!(dot.contains("morphology"), "dot must name the morph kernel");
}

#[test]
fn advise_reports_an_unlaunchable_kernel_structurally_and_exits_nonzero() {
    // 1024 threads/block at level B's 36 regs/thread exceeds the 32 K
    // register file: no block can become resident.
    let out = mogpu(&[
        "advise", "--level", "B", "--frames", "4", "--tpb", "1024", "--json",
    ]);
    assert!(
        !out.status.success(),
        "unlaunchable input must exit nonzero"
    );
    let doc: mogpu::json::Value = mogpu::json::from_str(stdout(&out).trim()).unwrap();
    assert_eq!(doc["launchable"], mogpu::json::Value::Bool(false));
    let advisories = doc["advisories"].as_array().unwrap();
    assert_eq!(
        advisories[0]["transform"],
        mogpu::json::Value::String("ShrinkLaunchFootprint".into())
    );
    assert_eq!(
        advisories[0]["rule"],
        mogpu::json::Value::String("unlaunchable-kernel".into())
    );
}

#[test]
fn bench_check_passes_on_an_unmodified_rerun_and_fails_on_a_seeded_regression() {
    let dir = temp_dir("bench");
    let baseline = dir.join("baseline.json");
    let path = baseline.to_str().unwrap();

    let rec = mogpu(&[
        "bench",
        "record",
        "--frames",
        "2",
        "--streams",
        "2",
        "--out",
        path,
    ]);
    assert!(
        rec.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&rec.stderr)
    );

    // Unmodified rerun: every metric diffs at exactly zero.
    let ok = mogpu(&["bench", "check", "--baseline", path]);
    assert!(ok.status.success(), "table:\n{}", stdout(&ok));
    assert!(stdout(&ok).contains("all metrics within tolerance"));

    // Seed a 10% fps regression into the recorded numbers: the fresh
    // measurement now reads 10% below baseline and must fail the gate.
    let mut b = mogpu::bench::baseline::read_baseline(&baseline).unwrap();
    b.levels.get_mut("F").unwrap().fps *= 1.1;
    mogpu::bench::baseline::write_baseline(&b, &baseline).unwrap();
    let bad = mogpu(&["bench", "check", "--baseline", path]);
    assert!(!bad.status.success(), "gate passed a seeded regression");
    assert!(stdout(&bad).contains("FAIL"), "table:\n{}", stdout(&bad));

    // --json mirrors the verdict machine-readably.
    let json_out = mogpu(&["bench", "check", "--baseline", path, "--json"]);
    assert!(!json_out.status.success());
    let doc: mogpu::json::Value = mogpu::json::from_str(stdout(&json_out).trim()).unwrap();
    assert_eq!(doc["pass"], mogpu::json::Value::Bool(false));

    // The failing gate wrote a drift attribution next to the baseline:
    // a schema-tagged DiffReport for the failing level, plus the text
    // rendering on stderr.
    let err = String::from_utf8_lossy(&json_out.stderr).into_owned();
    assert!(
        err.contains("wrote drift attribution"),
        "stderr does not announce the diff: {err}"
    );
    let diff_path = dir.join("diff.json");
    let diff: mogpu::json::Value =
        mogpu::json::from_str(&std::fs::read_to_string(&diff_path).unwrap()).unwrap();
    assert_eq!(diff["schema"].as_u64(), Some(1));
    assert!(
        diff["kernels"]
            .as_array()
            .unwrap()
            .iter()
            .any(|k| k["a_level"].as_str() == Some("F")),
        "diff does not attribute the failing level F"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn diff_compares_two_profile_reports_byte_stably() {
    let dir = temp_dir("diff");
    let a = dir.join("a.json");
    let f = dir.join("f.json");
    for (level, path) in [("A", &a), ("F", &f)] {
        let out = mogpu(&[
            "profile",
            "--level",
            level,
            "--frames",
            "3",
            "--report-out",
            path.to_str().unwrap(),
        ]);
        assert!(
            out.status.success(),
            "stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }

    // A vs F: the text rendering names the moved stall buckets with
    // file:line evidence; --json is canonical and byte-stable.
    let text = mogpu(&["diff", a.to_str().unwrap(), f.to_str().unwrap()]);
    assert!(
        text.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&text.stderr)
    );
    let rendered = stdout(&text);
    assert!(
        rendered.contains(".rs:"),
        "no file:line evidence:\n{rendered}"
    );

    let j1 = mogpu(&["diff", a.to_str().unwrap(), f.to_str().unwrap(), "--json"]);
    let j2 = mogpu(&["diff", a.to_str().unwrap(), f.to_str().unwrap(), "--json"]);
    assert!(j1.status.success());
    assert_eq!(j1.stdout, j2.stdout, "diff --json is not byte-stable");
    let doc: mogpu::json::Value = mogpu::json::from_str(stdout(&j1).trim()).unwrap();
    assert_eq!(doc["kind"].as_str(), Some("profile"));
    let kernel = &doc["kernels"].as_array().unwrap()[0];
    assert!(
        kernel["counters"].as_array().unwrap()[0]["counter"]
            .as_str()
            .unwrap()
            .starts_with("global_"),
        "top counter is not a coalescing counter"
    );

    // Self-diff: every delta is zero and fully attributed.
    let selfd = mogpu(&["diff", f.to_str().unwrap(), f.to_str().unwrap(), "--json"]);
    assert!(selfd.status.success());
    let doc: mogpu::json::Value = mogpu::json::from_str(stdout(&selfd).trim()).unwrap();
    let kernel = &doc["kernels"].as_array().unwrap()[0];
    assert_eq!(kernel["time_delta_s"].as_f64(), Some(0.0));
    assert_eq!(kernel["attributed_fraction"].as_f64(), Some(1.0));

    // Strict flag parsing, mirroring the other subcommands.
    let bad = mogpu(&["diff", a.to_str().unwrap(), f.to_str().unwrap(), "--bogus"]);
    assert!(!bad.status.success());
    assert!(String::from_utf8_lossy(&bad.stderr).contains("--bogus"));
    let one = mogpu(&["diff", a.to_str().unwrap()]);
    assert!(!one.status.success());
    std::fs::remove_dir_all(&dir).ok();
}

/// `mogpu streams` with serving flags writes a JSONL event log and a
/// report whose serving section `mogpu serve` can replay; violation
/// counts agree between the report JSON and the event log.
#[test]
fn streams_serving_outputs_round_trip_through_serve() {
    let dir = temp_dir("serving");
    let events = dir.join("events.jsonl");
    let report = dir.join("report.json");
    let out = mogpu(&[
        "streams",
        "--streams",
        "2",
        "--frames",
        "6",
        "--level",
        "C",
        "--slo-ms",
        "0.001", // 1 µs deadline: every frame violates
        "--events-out",
        events.to_str().unwrap(),
        "--report-out",
        report.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    let doc: mogpu::json::Value =
        mogpu::json::from_str(&std::fs::read_to_string(&report).unwrap()).unwrap();
    let total = doc["slo_violations_total"].as_f64().unwrap() as u64;
    assert_eq!(total, 10, "2 streams x 5 frames, all violating");
    assert_eq!(doc["streams_at_slo"].as_f64().unwrap(), 0.0);

    // Event log: one slo_violation line per violation, stable schema.
    let log = std::fs::read_to_string(&events).unwrap();
    let violations = log
        .lines()
        .map(|l| mogpu::json::from_str::<mogpu::json::Value>(l).unwrap())
        .filter(|v| v["event"] == mogpu::json::Value::String("slo_violation".into()))
        .count() as u64;
    assert_eq!(violations, total);

    // `mogpu serve` accepts the report (bind port 0, serve briefly).
    let out = mogpu(&[
        "serve",
        "--report",
        report.to_str().unwrap(),
        "--addr",
        "127.0.0.1:0",
        "--serve-seconds",
        "0.2",
    ]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout(&out).contains("serving /metrics on http://127.0.0.1:"));
    std::fs::remove_dir_all(&dir).ok();
}

/// Regression: a serving report whose `snapshots` array is empty (an
/// old recording, or a hand-edited file) used to panic the exposition
/// renderer with an out-of-bounds index. `mogpu serve` must replay it
/// as a valid, empty-but-well-formed exposition instead.
#[test]
fn serve_accepts_an_empty_snapshot_report_without_panicking() {
    let dir = temp_dir("empty_snapshots");
    let report = dir.join("report.json");
    let out = mogpu(&[
        "streams",
        "--streams",
        "2",
        "--frames",
        "4",
        "--report-out",
        report.to_str().unwrap(),
    ]);
    assert!(out.status.success());

    // Strip the snapshots, as an older or truncated recording would.
    // (The vendored Value has no IndexMut; walk the object entries.)
    let mut doc: mogpu::json::Value =
        mogpu::json::from_str(&std::fs::read_to_string(&report).unwrap()).unwrap();
    {
        let mogpu::json::Value::Object(entries) = &mut doc else {
            panic!("report is not an object")
        };
        let serving = &mut entries
            .iter_mut()
            .find(|(k, _)| k == "serving")
            .expect("report has a serving section")
            .1;
        let mogpu::json::Value::Object(serving) = serving else {
            panic!("serving is not an object")
        };
        serving
            .iter_mut()
            .find(|(k, _)| k == "snapshots")
            .expect("serving has snapshots")
            .1 = mogpu::json::Value::Array(Vec::new());
    }
    std::fs::write(&report, mogpu::json::to_string_pretty(&doc).unwrap()).unwrap();

    let out = mogpu(&[
        "serve",
        "--report",
        report.to_str().unwrap(),
        "--addr",
        "127.0.0.1:0",
        "--serve-seconds",
        "0.2",
    ]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout(&out).contains("0 snapshot(s)"));
    std::fs::remove_dir_all(&dir).ok();
}

/// Regression: `--replay-ms 0` used to reach the replay clock as a zero
/// divisor. The CLI now rejects zero, negative and non-numeric values
/// up front on both subcommands that take the flag.
#[test]
fn replay_ms_must_be_positive() {
    for args in [
        &[
            "streams",
            "--streams",
            "2",
            "--frames",
            "4",
            "--replay-ms",
            "0",
        ][..],
        &["serve", "--report", "x.json", "--replay-ms", "-250"][..],
        &["serve", "--report", "x.json", "--replay-ms", "nan"][..],
    ] {
        let out = mogpu(args);
        assert!(!out.status.success(), "{args:?} must fail");
        let err = String::from_utf8_lossy(&out.stderr).into_owned();
        assert!(
            err.contains("--replay-ms"),
            "{args:?} stderr does not name the flag: {err}"
        );
    }
}

#[test]
fn serve_requires_a_report() {
    let out = mogpu(&["serve"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--report"));
}

#[test]
fn bench_without_a_subcommand_errors() {
    let out = mogpu(&["bench"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("record|check"));
}

//! Integration tests for the profiler, the pipeline timeline trace, and
//! the machine-readable run reports.

use mogpu::core::{Bottleneck, ProfileMode, ProfileReport};
use mogpu::json::Value;
use mogpu::prelude::*;
use mogpu::sim::chrome_trace::chrome_trace;

fn scene_frames(n: usize) -> Vec<Frame<u8>> {
    SceneBuilder::new(Resolution::TINY)
        .seed(11)
        .walkers(2)
        .build()
        .render_sequence(n)
        .0
        .into_frames()
}

fn profiled_run(level: OptLevel, frames: &[Frame<u8>]) -> ProfileReport {
    let mut gpu = GpuMog::<f64>::new(
        Resolution::TINY,
        MogParams::default(),
        level,
        frames[0].as_slice(),
        GpuConfig::tesla_c2075(),
    )
    .unwrap();
    gpu.set_profile_mode(ProfileMode::On);
    gpu.process_all(&frames[1..]).unwrap();
    gpu.take_profile_report().unwrap()
}

// ---- report JSON ----

/// Recursively asserts a JSON tree contains no nulls (the serde shim
/// serializes non-finite floats as null, so this doubles as a finiteness
/// check over every metric in the report).
fn assert_no_nulls(v: &Value, path: &str) {
    match v {
        Value::Null => panic!("null value at {path}"),
        Value::Array(items) => {
            for (i, item) in items.iter().enumerate() {
                assert_no_nulls(item, &format!("{path}[{i}]"));
            }
        }
        Value::Object(fields) => {
            for (k, item) in fields {
                assert_no_nulls(item, &format!("{path}/{k}"));
            }
        }
        _ => {}
    }
}

#[test]
fn report_json_is_finite_and_round_trips_through_text() {
    let frames = scene_frames(5);
    let report = profiled_run(OptLevel::F, &frames);
    let json = mogpu::json::to_value(&report).unwrap();
    assert_no_nulls(&json, "report");
    let text = mogpu::json::to_string_pretty(&report).unwrap();
    let parsed: Value = mogpu::json::from_str(&text).unwrap();
    assert_no_nulls(&parsed, "reparsed");
    // The human-readable rendering mentions the bottleneck and a hotspot.
    let human = report.text(5);
    assert!(human.contains("level F"));
    assert!(human.contains("bound"));
    assert!(human.contains("kernels"), "hotspots missing from:\n{human}");
}

#[test]
fn report_reproduces_paper_trends() {
    let frames = scene_frames(6);
    let a = profiled_run(OptLevel::A, &frames);
    let b = profiled_run(OptLevel::B, &frames);
    let c = profiled_run(OptLevel::C, &frames);
    let d = profiled_run(OptLevel::D, &frames);
    // Coalescing (B) slashes store transactions vs the AoS baseline (A).
    assert!(
        b.metrics.store_transactions < a.metrics.store_transactions / 3,
        "A: {}, B: {}",
        a.metrics.store_transactions,
        b.metrics.store_transactions
    );
    // Sort elimination (D) improves branch efficiency over C.
    assert!(
        d.metrics.branch_efficiency > c.metrics.branch_efficiency,
        "C: {}, D: {}",
        c.metrics.branch_efficiency,
        d.metrics.branch_efficiency
    );
    // Overlap (C) must beat the sequential pipeline (B) end to end.
    assert!(c.pipeline.per_frame < b.pipeline.per_frame);
}

#[test]
fn hotspots_resolve_scan_kernel_sites() {
    let frames = scene_frames(5);
    let report = profiled_run(OptLevel::F, &frames);
    let scan_sites: Vec<&str> = report
        .hotspots
        .iter()
        .filter_map(|h| h.source.as_deref())
        .filter(|s| s.contains("scan.rs") || s.contains("kernels"))
        .collect();
    assert!(scan_sites.len() >= 3, "kernel sites: {scan_sites:?}");
    // Ranked by issue cycles, descending.
    for pair in report.hotspots.windows(2) {
        assert!(pair[0].stats.issue_cycles >= pair[1].stats.issue_cycles);
    }
    // History is cumulative fps: positive and finite.
    assert_eq!(report.frame_rate_history.len(), report.frames);
    for fps in &report.frame_rate_history {
        assert!(fps.is_finite() && *fps > 0.0);
    }
}

#[test]
fn bottleneck_classification_distinguishes_levels() {
    let frames = scene_frames(5);
    // Level A is memory-crushed (never transfer-bound at TINY): its
    // uncoalesced accesses dominate.
    let a = profiled_run(OptLevel::A, &frames);
    assert_ne!(a.bottleneck, Bottleneck::Transfer);
    // All levels classify to something printable.
    for level in OptLevel::LADDER {
        let r = profiled_run(level, &frames);
        assert!(!r.bottleneck.to_string().is_empty());
    }
}

// ---- Chrome trace ----

fn trace_events(trace: &Value) -> &[Value] {
    match trace {
        Value::Object(fields) => match fields.iter().find(|(k, _)| k == "traceEvents") {
            Some((_, Value::Array(evs))) => evs,
            _ => panic!("traceEvents missing"),
        },
        _ => panic!("trace must be an object"),
    }
}

fn field<'a>(event: &'a Value, key: &str) -> Option<&'a Value> {
    match event {
        Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
        _ => None,
    }
}

fn f64_of(v: &Value) -> f64 {
    match v {
        Value::F64(x) => *x,
        Value::U64(x) => *x as f64,
        Value::I64(x) => *x as f64,
        other => panic!("expected number, got {other:?}"),
    }
}

/// Collects `(ts, dur)` intervals of `ph:"X"` events on one thread track.
fn track_spans(events: &[Value], tid: u64) -> Vec<(f64, f64)> {
    events
        .iter()
        .filter(|e| field(e, "ph") == Some(&Value::String("X".into())))
        .filter(|e| field(e, "tid") == Some(&Value::U64(tid)))
        .map(|e| {
            (
                f64_of(field(e, "ts").unwrap()),
                f64_of(field(e, "dur").unwrap()),
            )
        })
        .collect()
}

fn intervals_overlap(a: &[(f64, f64)], b: &[(f64, f64)]) -> bool {
    a.iter()
        .any(|&(s1, d1)| b.iter().any(|&(s2, d2)| s1 < s2 + d2 && s2 < s1 + d1))
}

#[test]
fn level_c_trace_shows_copy_compute_overlap_and_level_a_does_not() {
    let frames = scene_frames(4); // 3 processed frames
    let c = profiled_run(OptLevel::C, &frames);
    let a = profiled_run(OptLevel::A, &frames);
    assert_eq!(c.schedule.len(), 3);

    let trace_c = chrome_trace("level C", &c.schedule);
    let evs = trace_events(&trace_c);
    // 3 frames x 3 stages of ph:"X" + 4 metadata events.
    assert_eq!(evs.len(), 13);
    let h2d = track_spans(evs, 0);
    let kernel = track_spans(evs, 1);
    let d2h = track_spans(evs, 2);
    assert_eq!((h2d.len(), kernel.len(), d2h.len()), (3, 3, 3));
    // Valid trace-event fields: non-negative microsecond timestamps,
    // positive durations, a category, and a name on every duration event.
    for e in evs
        .iter()
        .filter(|e| field(e, "ph") == Some(&Value::String("X".into())))
    {
        assert!(f64_of(field(e, "ts").unwrap()) >= 0.0);
        assert!(f64_of(field(e, "dur").unwrap()) > 0.0);
        assert!(matches!(field(e, "name"), Some(Value::String(_))));
        assert!(matches!(field(e, "cat"), Some(Value::String(_))));
    }
    // Double buffering: copies overlap compute.
    assert!(
        intervals_overlap(&h2d, &kernel) || intervals_overlap(&d2h, &kernel),
        "level C shows no copy/compute overlap: {h2d:?} {kernel:?} {d2h:?}"
    );

    // Sequential level A: no engine ever runs concurrently with another.
    let trace_a = chrome_trace("level A", &a.schedule);
    let evs_a = trace_events(&trace_a);
    let h2d_a = track_spans(evs_a, 0);
    let kernel_a = track_spans(evs_a, 1);
    let d2h_a = track_spans(evs_a, 2);
    assert!(!intervals_overlap(&h2d_a, &kernel_a));
    assert!(!intervals_overlap(&d2h_a, &kernel_a));
    assert!(!intervals_overlap(&h2d_a, &d2h_a));
}

#[test]
fn trace_json_serializes_with_finite_numbers() {
    let frames = scene_frames(4);
    let c = profiled_run(OptLevel::C, &frames);
    let trace = chrome_trace("level C", &c.schedule);
    let text = mogpu::json::to_string_pretty(&trace).unwrap();
    assert!(text.contains("\"traceEvents\""));
    assert!(
        !text.contains("null"),
        "non-finite value leaked into trace:\n{text}"
    );
    let parsed: Value = mogpu::json::from_str(&text).unwrap();
    assert_eq!(trace_events(&parsed).len(), 13);
}

// ---- zero-overhead-when-off ----

#[test]
fn unprofiled_run_report_is_unchanged_by_profiling_support() {
    // The plain path must produce identical masks and counters whether or
    // not a profiled run happened in between on the same pipeline.
    let frames = scene_frames(5);
    let mut gpu = GpuMog::<f64>::new(
        Resolution::TINY,
        MogParams::default(),
        OptLevel::D,
        frames[0].as_slice(),
        GpuConfig::tesla_c2075(),
    )
    .unwrap();
    let first = gpu.process_all(&frames[1..]).unwrap();
    assert!(gpu.take_profile_report().is_none());

    let mut reference = GpuMog::<f64>::new(
        Resolution::TINY,
        MogParams::default(),
        OptLevel::D,
        frames[0].as_slice(),
        GpuConfig::tesla_c2075(),
    )
    .unwrap();
    reference.set_profile_mode(ProfileMode::On);
    let profiled = reference.process_all(&frames[1..]).unwrap();
    assert_eq!(first.masks, profiled.masks);
    assert_eq!(first.stats, profiled.stats);
}

//! Robustness studies on the scene stressors background subtraction is
//! known for: multimodal flicker, global illumination changes, camera
//! jitter — and the baseline comparisons that motivate MoG in the paper's
//! introduction ("MoG is most frequently used thanks to its high quality
//! and efficiency").

use mogpu::frame::IlluminationEvent;
use mogpu::mog::{FrameDiff, RunningAverage};
use mogpu::prelude::*;

fn fpr(mask: &Mask, truth: &Mask) -> f64 {
    let mut fp = 0usize;
    let mut bg = 0usize;
    for (d, t) in mask.as_slice().iter().zip(truth.as_slice()) {
        if *t == 0 {
            bg += 1;
            if *d == 255 {
                fp += 1;
            }
        }
    }
    fp as f64 / bg.max(1) as f64
}

#[test]
fn mog_beats_running_average_on_multimodal_scenes() {
    // The motivating claim: single-mode models turn flicker pixels into
    // permanent false positives; MoG absorbs them as background modes.
    let res = Resolution::TINY;
    let scene = SceneBuilder::new(res)
        .seed(404)
        .walkers(2)
        .bimodal_fraction(0.25)
        .bimodal_contrast(70.0)
        .build();
    let (frames, truths) = scene.render_sequence(45);
    let frames = frames.into_frames();
    let truths = truths.into_frames();

    let mut ra = RunningAverage::<f64>::new(res, 0.95, 25.0, frames[0].as_slice());
    let ra_masks = ra.process_all(&frames[1..]);

    let mut gpu = GpuMog::<f64>::new(
        res,
        MogParams::default(),
        OptLevel::F,
        frames[0].as_slice(),
        GpuConfig::tesla_c2075(),
    )
    .unwrap();
    let mog_masks = gpu.process_all(&frames[1..]).unwrap().masks;

    let last = frames.len() - 2;
    let fpr_ra = fpr(&ra_masks[last], &truths[last + 1]);
    let fpr_mog = fpr(&mog_masks[last], &truths[last + 1]);
    assert!(
        fpr_ra > 5.0 * fpr_mog.max(1e-4),
        "RA FPR {fpr_ra:.4} should dwarf MoG FPR {fpr_mog:.4}"
    );
    assert!(fpr_mog < 0.03, "MoG FPR on multimodal scene: {fpr_mog:.4}");
}

#[test]
fn illumination_change_causes_transient_then_recovery() {
    // Lights change at frame 30 (step of +40 grey levels): MoG floods
    // with false positives, then re-absorbs the new appearance — the
    // adaptive behaviour its learning factor exists for.
    let res = Resolution::TINY;
    let scene = SceneBuilder::new(res)
        .seed(7)
        .bimodal_fraction(0.0)
        .noise_sd(1.5)
        .illumination_event(IlluminationEvent {
            start: 30,
            duration: 0,
            delta: 40.0,
        })
        .build();
    let (frames, _) = scene.render_sequence(120);
    let frames = frames.into_frames();

    // Faster adaptation so recovery fits the test horizon.
    let params = MogParams {
        alpha: 0.85,
        ..MogParams::default()
    };
    let mut gpu = GpuMog::<f64>::new(
        res,
        params,
        OptLevel::F,
        frames[0].as_slice(),
        GpuConfig::tesla_c2075(),
    )
    .unwrap();
    let masks = gpu.process_all(&frames[1..]).unwrap().masks;

    let before = masks[27].fraction_set(); // settled, pre-event
    let burst = masks[30].fraction_set(); // the first post-event frame
    let after = masks.last().unwrap().fraction_set(); // long after

    assert!(
        before < 0.02,
        "settled foreground before event: {before:.3}"
    );
    assert!(
        burst > 0.5,
        "illumination step must flood the mask: {burst:.3}"
    );
    assert!(
        after < 0.05,
        "the model must re-absorb the new level: {after:.3}"
    );
}

#[test]
fn gradual_illumination_ramp_is_less_disruptive_than_a_step() {
    let res = Resolution::TINY;
    let run = |duration: usize| {
        let scene = SceneBuilder::new(res)
            .seed(7)
            .bimodal_fraction(0.0)
            .noise_sd(1.5)
            .illumination_event(IlluminationEvent {
                start: 30,
                duration,
                delta: 40.0,
            })
            .build();
        let (frames, _) = scene.render_sequence(80);
        let frames = frames.into_frames();
        let params = MogParams {
            alpha: 0.85,
            ..MogParams::default()
        };
        let mut gpu = GpuMog::<f64>::new(
            res,
            params,
            OptLevel::F,
            frames[0].as_slice(),
            GpuConfig::tesla_c2075(),
        )
        .unwrap();
        let masks = gpu.process_all(&frames[1..]).unwrap().masks;
        // Peak foreground fraction during/after the event.
        masks[28..50]
            .iter()
            .map(|m| m.fraction_set())
            .fold(0.0f64, f64::max)
    };
    let step_peak = run(0);
    let ramp_peak = run(40); // 1 grey level per frame: inside match range
    assert!(
        ramp_peak < step_peak / 2.0,
        "slow ramp (peak {ramp_peak:.3}) must disrupt less than a step (peak {step_peak:.3})"
    );
}

#[test]
fn camera_jitter_raises_false_positives_at_edges() {
    // A wobbling camera makes high-contrast background edges flicker
    // between pixels — a weakness of strictly per-pixel models the paper's
    // fixed-camera assumption avoids.
    let res = Resolution::TINY;
    let run = |amplitude: f64| {
        let scene = SceneBuilder::new(res)
            .seed(88)
            .bimodal_fraction(0.15) // contrast structure for edges
            .bimodal_contrast(80.0)
            .jitter(amplitude)
            .build();
        let (frames, truths) = scene.render_sequence(40);
        let frames = frames.into_frames();
        let truths = truths.into_frames();
        let mut gpu = GpuMog::<f64>::new(
            res,
            MogParams::default(),
            OptLevel::F,
            frames[0].as_slice(),
            GpuConfig::tesla_c2075(),
        )
        .unwrap();
        let masks = gpu.process_all(&frames[1..]).unwrap().masks;
        let last = masks.len() - 1;
        fpr(&masks[last], &truths[last + 1])
    };
    let steady = run(0.0);
    let shaky = run(2.0);
    assert!(
        shaky >= steady,
        "jitter should not reduce false positives: steady {steady:.4} vs shaky {shaky:.4}"
    );
}

#[test]
fn frame_diff_baseline_misses_what_mog_catches() {
    // A large, slowly moving object: its interior overlaps itself frame
    // to frame, so frame differencing sees only the leading/trailing
    // edges while MoG reports the full silhouette.
    let res = Resolution::TINY;
    let scene = SceneBuilder::new(res)
        .seed(31)
        .bimodal_fraction(0.0)
        .noise_sd(1.0)
        .object(mogpu::frame::MovingObject {
            shape: mogpu::frame::ObjectShape::Rect { w: 14, h: 14 },
            x0: 20.0,
            y0: 15.0,
            vx: 0.4,
            vy: 0.0,
            level: 230.0,
        })
        .build();
    let (frames, truths) = scene.render_sequence(30);
    let frames = frames.into_frames();
    let truths = truths.into_frames();

    let mut fd = FrameDiff::new(res, 25.0, frames[0].as_slice());
    let fd_masks = fd.process_all(&frames[1..]);
    // Slow adaptation (as a deployment watching for loitering would use),
    // so the slow object is not absorbed within the horizon.
    let params = MogParams {
        alpha: 0.995,
        ..MogParams::default()
    };
    let mut gpu = GpuMog::<f64>::new(
        res,
        params,
        OptLevel::F,
        frames[0].as_slice(),
        GpuConfig::tesla_c2075(),
    )
    .unwrap();
    let mog_masks = gpu.process_all(&frames[1..]).unwrap().masks;

    let recall = |mask: &Mask, truth: &Mask| {
        let mut hit = 0usize;
        let mut total = 0usize;
        for (d, t) in mask.as_slice().iter().zip(truth.as_slice()) {
            if *t == 255 {
                total += 1;
                if *d == 255 {
                    hit += 1;
                }
            }
        }
        hit as f64 / total.max(1) as f64
    };
    let last = frames.len() - 2;
    let r_fd = recall(&fd_masks[last], &truths[last + 1]);
    let r_mog = recall(&mog_masks[last], &truths[last + 1]);
    assert!(
        r_mog > r_fd + 0.2,
        "MoG recall {r_mog:.2} vs frame-diff {r_fd:.2}"
    );
}

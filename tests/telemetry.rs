//! Integration tests for the time-resolved telemetry subsystem: the
//! Prometheus text exposition (parsed back with a small round-trip
//! parser), the series embedded in run reports, the Chrome-trace counter
//! tracks, and the byte-stable canonical serialization.

use mogpu::json::Value;
use mogpu::prelude::*;
use mogpu::sim::telemetry::{prometheus, KernelGauges};
use std::collections::BTreeMap;

fn scene_frames(n: usize) -> Vec<Frame<u8>> {
    SceneBuilder::new(Resolution::TINY)
        .seed(11)
        .walkers(2)
        .build()
        .render_sequence(n)
        .0
        .into_frames()
}

fn run(level: OptLevel, frames: &[Frame<u8>]) -> RunReport {
    let mut gpu = GpuMog::<f64>::new(
        Resolution::TINY,
        MogParams::default(),
        level,
        frames[0].as_slice(),
        GpuConfig::tesla_c2075(),
    )
    .unwrap();
    gpu.process_all(&frames[1..]).unwrap()
}

fn profiled_run(level: OptLevel, frames: &[Frame<u8>]) -> ProfileReport {
    let mut gpu = GpuMog::<f64>::new(
        Resolution::TINY,
        MogParams::default(),
        level,
        frames[0].as_slice(),
        GpuConfig::tesla_c2075(),
    )
    .unwrap();
    gpu.set_profile_mode(ProfileMode::On);
    gpu.process_all(&frames[1..]).unwrap();
    gpu.take_profile_report().unwrap()
}

// ---- a small Prometheus text-format parser for round-trip checks ----

#[derive(Debug)]
struct Sample {
    labels: BTreeMap<String, String>,
    value: f64,
}

#[derive(Debug, Default)]
struct Exposition {
    /// `# HELP` texts keyed by metric name.
    help: BTreeMap<String, String>,
    /// `# TYPE` values ("gauge" / "counter") keyed by metric name.
    types: BTreeMap<String, String>,
    /// Samples keyed by metric name, in exposition order.
    samples: BTreeMap<String, Vec<Sample>>,
}

/// Unescapes a Prometheus label value: `\\`, `\"`, and `\n`.
fn unescape(s: &str) -> String {
    let mut out = String::new();
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('\\') => out.push('\\'),
                Some('"') => out.push('"'),
                Some('n') => out.push('\n'),
                other => panic!("bad escape \\{other:?} in label value {s:?}"),
            }
        } else {
            out.push(c);
        }
    }
    out
}

/// Splits `name{l1="v1",l2="v2"} value` into its parts, honoring escapes.
fn parse_sample_line(line: &str) -> (String, Sample) {
    let brace = line.find('{');
    let (name, rest) = match brace {
        Some(i) => (&line[..i], &line[i..]),
        None => {
            let mut it = line.splitn(2, ' ');
            let name = it.next().unwrap();
            let value: f64 = it.next().expect("value").trim().parse().expect("f64");
            return (
                name.to_string(),
                Sample {
                    labels: BTreeMap::new(),
                    value,
                },
            );
        }
    };
    assert!(rest.starts_with('{'), "malformed sample line {line:?}");
    // Scan the label block char by char; a raw '}' only terminates it
    // outside a quoted value.
    let mut labels = BTreeMap::new();
    let mut chars = rest.char_indices().skip(1).peekable();
    let mut end = None;
    loop {
        // Label name up to '='.
        let mut label = String::new();
        loop {
            match chars.next() {
                Some((i, '}')) => {
                    assert!(label.is_empty(), "dangling label name in {line:?}");
                    end = Some(i);
                    break;
                }
                Some((_, '=')) => break,
                Some((_, c)) => label.push(c),
                None => panic!("unterminated label block in {line:?}"),
            }
        }
        if label.is_empty() {
            break;
        }
        assert_eq!(chars.next().map(|(_, c)| c), Some('"'), "in {line:?}");
        let mut raw = String::new();
        loop {
            match chars.next() {
                Some((_, '\\')) => {
                    raw.push('\\');
                    raw.push(chars.next().expect("escaped char").1);
                }
                Some((_, '"')) => break,
                Some((_, c)) => raw.push(c),
                None => panic!("unterminated label value in {line:?}"),
            }
        }
        labels.insert(label, unescape(&raw));
        if let Some(&(_, ',')) = chars.peek() {
            chars.next();
        }
    }
    let end = end.expect("label block must close");
    let value_text = rest[end + 1..].trim();
    let value: f64 = value_text.parse().unwrap_or_else(|_| {
        assert_eq!(value_text, "NaN", "unparsable value in {line:?}");
        f64::NAN
    });
    (name.to_string(), Sample { labels, value })
}

/// Parses a full exposition, asserting the structural invariants: every
/// line is a comment or a sample, and each metric's `# HELP` and
/// `# TYPE` appear exactly once, before its first sample.
fn parse_exposition(text: &str) -> Exposition {
    let mut exp = Exposition::default();
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let mut it = rest.splitn(2, ' ');
            let name = it.next().unwrap().to_string();
            let help = it.next().expect("help text").to_string();
            assert!(
                exp.help.insert(name.clone(), help).is_none(),
                "duplicate # HELP for {name}"
            );
        } else if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.splitn(2, ' ');
            let name = it.next().unwrap().to_string();
            let ty = it.next().expect("type").to_string();
            assert!(
                ["gauge", "counter"].contains(&ty.as_str()),
                "bad type {ty:?} for {name}"
            );
            assert!(
                exp.types.insert(name.clone(), ty).is_none(),
                "duplicate # TYPE for {name}"
            );
        } else {
            assert!(!line.starts_with('#'), "unrecognized comment {line:?}");
            let (name, sample) = parse_sample_line(line);
            assert!(
                exp.help.contains_key(&name) && exp.types.contains_key(&name),
                "sample for {name} before its # HELP/# TYPE"
            );
            exp.samples.entry(name).or_default().push(sample);
        }
    }
    exp
}

// ---- exposition round trip ----

#[test]
fn prometheus_round_trips_and_matches_the_report_series() {
    let frames = scene_frames(10);
    let report = run(OptLevel::Windowed { group: 8 }, &frames);
    let t = &report.telemetry;
    let gauges = KernelGauges::new(&report.metrics, &report.occupancy);
    let text = prometheus(&[("level W(8)".to_string(), t, Some(gauges))]);
    let exp = parse_exposition(&text);

    // Every emitted metric carries help and type.
    for name in exp.samples.keys() {
        assert!(name.starts_with("mogpu_"), "unprefixed metric {name}");
    }
    assert_eq!(exp.types["mogpu_sm_occupancy"], "gauge");
    assert_eq!(exp.types["mogpu_dram_bytes_total"], "counter");

    // Per-SM gauge samples reproduce the serialized series bit for bit:
    // both sides print through the same shortest-round-trip formatter.
    let occ = &exp.samples["mogpu_sm_occupancy"];
    assert_eq!(occ.len(), t.sm.len() * t.samples());
    for s in occ {
        let sm: usize = s.labels["sm"].parse().unwrap();
        let q: usize = s.labels["q"].parse().unwrap();
        assert_eq!(s.labels["pipeline"], "level W(8)");
        assert!(
            s.value == t.sm[sm].occupancy[q],
            "sm {sm} q {q}: {} != {}",
            s.value,
            t.sm[sm].occupancy[q]
        );
    }
    let bw = &exp.samples["mogpu_dram_bandwidth_bytes_per_second"];
    assert_eq!(bw.len(), t.samples());
    for s in bw {
        let q: usize = s.labels["q"].parse().unwrap();
        assert!(s.value == t.dram_bandwidth[q]);
    }
}

#[test]
fn telemetry_series_integrate_back_to_the_aggregate_counters() {
    // The acceptance bar of the subsystem: the time-resolved series must
    // be consistent with the aggregate report to 1e-9 relative error.
    let frames = scene_frames(10);
    let report = run(OptLevel::Windowed { group: 8 }, &frames);
    let t = &report.telemetry;
    let cfg = GpuConfig::tesla_c2075();

    let total = report.stats.bytes_transacted(&cfg) as f64;
    assert!(total > 0.0);
    assert!(
        (t.total_dram_bytes() - total).abs() / total < 1e-9,
        "series integrate to {} DRAM bytes, aggregate says {total}",
        t.total_dram_bytes()
    );
    assert!(
        (t.mean_busy_occupancy() - report.occupancy.occupancy).abs() < 1e-9,
        "busy-weighted occupancy {} vs aggregate {}",
        t.mean_busy_occupancy(),
        report.occupancy.occupancy
    );
}

#[test]
fn dram_byte_counter_is_monotone_in_time() {
    let frames = scene_frames(8);
    let a = run(OptLevel::A, &frames);
    let f = run(OptLevel::F, &frames);
    let text = prometheus(&[
        ("level A".to_string(), &a.telemetry, None),
        ("level F".to_string(), &f.telemetry, None),
    ]);
    let exp = parse_exposition(&text);
    // Group the counter samples per pipeline, order by the q label.
    let mut per_pipeline: BTreeMap<String, Vec<(usize, f64)>> = BTreeMap::new();
    for s in &exp.samples["mogpu_dram_bytes_total"] {
        per_pipeline
            .entry(s.labels["pipeline"].clone())
            .or_default()
            .push((s.labels["q"].parse().unwrap(), s.value));
    }
    assert_eq!(per_pipeline.len(), 2);
    for (pipeline, mut samples) in per_pipeline {
        samples.sort_by_key(|&(q, _)| q);
        for w in samples.windows(2) {
            assert!(
                w[1].1 >= w[0].1,
                "{pipeline}: counter decreases at q {}",
                w[1].0
            );
        }
        assert!(samples.last().unwrap().1 > 0.0, "{pipeline}: empty counter");
    }
}

#[test]
fn hostile_pipeline_labels_survive_the_round_trip() {
    let frames = scene_frames(4);
    let report = run(OptLevel::C, &frames);
    let evil = "cam\\era \"7\"\nbasement";
    let gauges = KernelGauges::new(&report.metrics, &report.occupancy);
    let text = prometheus(&[(evil.to_string(), &report.telemetry, Some(gauges))]);
    let exp = parse_exposition(&text);
    for samples in exp.samples.values() {
        for s in samples {
            assert_eq!(s.labels["pipeline"], evil);
        }
    }
}

// ---- embedded report series and Chrome-trace counters ----

#[test]
fn profile_report_embeds_the_telemetry_series_as_json() {
    let frames = scene_frames(6);
    let report = profiled_run(OptLevel::F, &frames);
    let json = mogpu::json::to_value(&report).unwrap();
    let t = &json["telemetry"];
    assert_eq!(
        t["num_sms"],
        Value::U64(GpuConfig::tesla_c2075().num_sms as u64)
    );
    let sm = t["sm"].as_array().expect("per-SM series array");
    assert_eq!(sm.len(), GpuConfig::tesla_c2075().num_sms as usize);
    // The serialized series deserializes back to the identical value.
    let back: mogpu::sim::PipelineTelemetry =
        mogpu::json::from_value(t.clone()).expect("telemetry round-trips");
    assert_eq!(back.samples(), report.telemetry.samples());
    assert_eq!(back.sm[0].occupancy, report.telemetry.sm[0].occupancy);
    assert_eq!(back.dram_bandwidth, report.telemetry.dram_bandwidth);
}

#[test]
fn chrome_trace_gains_counter_tracks_on_the_same_clock() {
    let frames = scene_frames(6);
    let report = profiled_run(OptLevel::C, &frames);
    let mut builder = mogpu::sim::chrome_trace::TraceBuilder::new();
    let pid = builder.add_pipeline("level C", &report.schedule);
    builder.add_counters(pid, &report.telemetry);
    builder.add_stall_counters(pid, &report.telemetry, &report.stalls);
    let trace = mogpu::json::to_value(&builder.finish()).unwrap();
    let events = trace["traceEvents"].as_array().unwrap();
    let counters: Vec<&Value> = events
        .iter()
        .filter(|e| e["ph"] == Value::String("C".into()))
        .collect();
    assert!(!counters.is_empty(), "no counter events in trace");
    let makespan_us = 1e6 * report.telemetry.makespan;
    for e in &counters {
        assert_eq!(e["pid"], Value::U64(pid));
        let ts = e["ts"].as_f64().expect("numeric ts");
        assert!(
            ts >= 0.0 && ts <= makespan_us + 1e-9,
            "counter ts {ts} outside [0, {makespan_us}]"
        );
    }
    // The stall-reason track rides the same clock as the other counters.
    let stall_track: Vec<&&Value> = counters
        .iter()
        .filter(|e| e["name"] == Value::String("kernel stall reasons".into()))
        .collect();
    assert_eq!(stall_track.len(), report.telemetry.samples() + 1);
}

#[test]
fn multi_stream_report_carries_device_wide_telemetry() {
    let frames_a = scene_frames(6);
    let frames_b = SceneBuilder::new(Resolution::TINY)
        .seed(12)
        .walkers(3)
        .build()
        .render_sequence(6)
        .0
        .into_frames();
    let seeds: Vec<&[u8]> = vec![frames_a[0].as_slice(), frames_b[0].as_slice()];
    let mut multi = MultiGpuMog::<f64>::new(
        Resolution::TINY,
        MogParams::default(),
        OptLevel::F,
        &seeds,
        GpuConfig::tesla_c2075(),
    )
    .unwrap();
    let inputs = vec![frames_a[1..].to_vec(), frames_b[1..].to_vec()];
    let report = multi.process_all(&inputs).unwrap();
    let t = &report.telemetry;
    assert!(t.samples() > 0);
    assert!((t.makespan - report.makespan).abs() < 1e-12);
    for q in 0..t.samples() {
        assert!((0.0..=1.0).contains(&t.copy_engine_utilization[q]));
        assert!((0.0..=1.0).contains(&t.l2_hit_rate[q]));
    }
    // Both streams' kernels hit DRAM, so the device-wide series is live.
    assert!(t.total_dram_bytes() > 0.0);
}

// ---- deterministic serialization ----

#[test]
fn canonical_report_serialization_is_byte_stable() {
    let frames = scene_frames(6);
    let first =
        mogpu::json::to_string_canonical_pretty(&profiled_run(OptLevel::F, &frames)).unwrap();
    let second =
        mogpu::json::to_string_canonical_pretty(&profiled_run(OptLevel::F, &frames)).unwrap();
    assert_eq!(first, second);
    // Canonical form sorts keys: reserializing a parsed document is a
    // fixed point.
    let parsed: Value = mogpu::json::from_str(&first).unwrap();
    assert_eq!(
        mogpu::json::to_string_canonical_pretty(&parsed).unwrap(),
        first
    );
}

//! Integration tests for the time-resolved telemetry subsystem: the
//! Prometheus text exposition (parsed back with a small round-trip
//! parser), the series embedded in run reports, the Chrome-trace counter
//! tracks, and the byte-stable canonical serialization.

use mogpu::json::Value;
use mogpu::prelude::*;
use mogpu::sim::telemetry::{prometheus, KernelGauges};
use std::collections::BTreeMap;

fn scene_frames(n: usize) -> Vec<Frame<u8>> {
    SceneBuilder::new(Resolution::TINY)
        .seed(11)
        .walkers(2)
        .build()
        .render_sequence(n)
        .0
        .into_frames()
}

fn run(level: OptLevel, frames: &[Frame<u8>]) -> RunReport {
    let mut gpu = GpuMog::<f64>::new(
        Resolution::TINY,
        MogParams::default(),
        level,
        frames[0].as_slice(),
        GpuConfig::tesla_c2075(),
    )
    .unwrap();
    gpu.process_all(&frames[1..]).unwrap()
}

fn profiled_run(level: OptLevel, frames: &[Frame<u8>]) -> ProfileReport {
    let mut gpu = GpuMog::<f64>::new(
        Resolution::TINY,
        MogParams::default(),
        level,
        frames[0].as_slice(),
        GpuConfig::tesla_c2075(),
    )
    .unwrap();
    gpu.set_profile_mode(ProfileMode::On);
    gpu.process_all(&frames[1..]).unwrap();
    gpu.take_profile_report().unwrap()
}

// ---- a small Prometheus text-format parser for round-trip checks ----

#[derive(Debug)]
struct Sample {
    labels: BTreeMap<String, String>,
    value: f64,
}

#[derive(Debug, Default)]
struct Exposition {
    /// `# HELP` texts keyed by metric name.
    help: BTreeMap<String, String>,
    /// `# TYPE` values ("gauge" / "counter") keyed by metric name.
    types: BTreeMap<String, String>,
    /// Samples keyed by metric name, in exposition order.
    samples: BTreeMap<String, Vec<Sample>>,
}

/// Unescapes a Prometheus label value: `\\`, `\"`, and `\n`.
fn unescape(s: &str) -> String {
    let mut out = String::new();
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('\\') => out.push('\\'),
                Some('"') => out.push('"'),
                Some('n') => out.push('\n'),
                other => panic!("bad escape \\{other:?} in label value {s:?}"),
            }
        } else {
            out.push(c);
        }
    }
    out
}

/// Splits `name{l1="v1",l2="v2"} value` into its parts, honoring escapes.
fn parse_sample_line(line: &str) -> (String, Sample) {
    let brace = line.find('{');
    let (name, rest) = match brace {
        Some(i) => (&line[..i], &line[i..]),
        None => {
            let mut it = line.splitn(2, ' ');
            let name = it.next().unwrap();
            let value: f64 = it.next().expect("value").trim().parse().expect("f64");
            return (
                name.to_string(),
                Sample {
                    labels: BTreeMap::new(),
                    value,
                },
            );
        }
    };
    assert!(rest.starts_with('{'), "malformed sample line {line:?}");
    // Scan the label block char by char; a raw '}' only terminates it
    // outside a quoted value.
    let mut labels = BTreeMap::new();
    let mut chars = rest.char_indices().skip(1).peekable();
    let mut end = None;
    loop {
        // Label name up to '='.
        let mut label = String::new();
        loop {
            match chars.next() {
                Some((i, '}')) => {
                    assert!(label.is_empty(), "dangling label name in {line:?}");
                    end = Some(i);
                    break;
                }
                Some((_, '=')) => break,
                Some((_, c)) => label.push(c),
                None => panic!("unterminated label block in {line:?}"),
            }
        }
        if label.is_empty() {
            break;
        }
        assert_eq!(chars.next().map(|(_, c)| c), Some('"'), "in {line:?}");
        let mut raw = String::new();
        loop {
            match chars.next() {
                Some((_, '\\')) => {
                    raw.push('\\');
                    raw.push(chars.next().expect("escaped char").1);
                }
                Some((_, '"')) => break,
                Some((_, c)) => raw.push(c),
                None => panic!("unterminated label value in {line:?}"),
            }
        }
        labels.insert(label, unescape(&raw));
        if let Some(&(_, ',')) = chars.peek() {
            chars.next();
        }
    }
    let end = end.expect("label block must close");
    let value_text = rest[end + 1..].trim();
    let value: f64 = value_text.parse().unwrap_or_else(|_| {
        assert_eq!(value_text, "NaN", "unparsable value in {line:?}");
        f64::NAN
    });
    (name.to_string(), Sample { labels, value })
}

/// Parses a full exposition, asserting the structural invariants: every
/// line is a comment or a sample, and each metric's `# HELP` and
/// `# TYPE` appear exactly once, before its first sample.
fn parse_exposition(text: &str) -> Exposition {
    let mut exp = Exposition::default();
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let mut it = rest.splitn(2, ' ');
            let name = it.next().unwrap().to_string();
            let help = it.next().expect("help text").to_string();
            assert!(
                exp.help.insert(name.clone(), help).is_none(),
                "duplicate # HELP for {name}"
            );
        } else if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.splitn(2, ' ');
            let name = it.next().unwrap().to_string();
            let ty = it.next().expect("type").to_string();
            assert!(
                ["gauge", "counter", "histogram"].contains(&ty.as_str()),
                "bad type {ty:?} for {name}"
            );
            assert!(
                exp.types.insert(name.clone(), ty).is_none(),
                "duplicate # TYPE for {name}"
            );
        } else {
            assert!(!line.starts_with('#'), "unrecognized comment {line:?}");
            let (name, sample) = parse_sample_line(line);
            // Histogram samples (`x_bucket`, `x_sum`, `x_count`) are
            // documented under their family name `x`.
            let family = ["_bucket", "_sum", "_count"]
                .iter()
                .find_map(|suf| name.strip_suffix(suf))
                .filter(|base| exp.types.get(*base).map(String::as_str) == Some("histogram"))
                .map(|base| base.to_string())
                .unwrap_or_else(|| name.clone());
            assert!(
                exp.help.contains_key(&family) && exp.types.contains_key(&family),
                "sample for {name} before its # HELP/# TYPE"
            );
            exp.samples.entry(name).or_default().push(sample);
        }
    }
    exp
}

// ---- exposition round trip ----

#[test]
fn prometheus_round_trips_and_matches_the_report_series() {
    let frames = scene_frames(10);
    let report = run(OptLevel::Windowed { group: 8 }, &frames);
    let t = &report.telemetry;
    let gauges = KernelGauges::new(&report.metrics, &report.occupancy);
    let text = prometheus(&[("level W(8)".to_string(), t, Some(gauges))]);
    let exp = parse_exposition(&text);

    // Every emitted metric carries help and type.
    for name in exp.samples.keys() {
        assert!(name.starts_with("mogpu_"), "unprefixed metric {name}");
    }
    assert_eq!(exp.types["mogpu_sm_occupancy"], "gauge");
    assert_eq!(exp.types["mogpu_dram_bytes_total"], "counter");

    // Per-SM gauge samples reproduce the serialized series bit for bit:
    // both sides print through the same shortest-round-trip formatter.
    let occ = &exp.samples["mogpu_sm_occupancy"];
    assert_eq!(occ.len(), t.sm.len() * t.samples());
    for s in occ {
        let sm: usize = s.labels["sm"].parse().unwrap();
        let q: usize = s.labels["q"].parse().unwrap();
        assert_eq!(s.labels["pipeline"], "level W(8)");
        assert!(
            s.value == t.sm[sm].occupancy[q],
            "sm {sm} q {q}: {} != {}",
            s.value,
            t.sm[sm].occupancy[q]
        );
    }
    let bw = &exp.samples["mogpu_dram_bandwidth_bytes_per_second"];
    assert_eq!(bw.len(), t.samples());
    for s in bw {
        let q: usize = s.labels["q"].parse().unwrap();
        assert!(s.value == t.dram_bandwidth[q]);
    }
}

#[test]
fn telemetry_series_integrate_back_to_the_aggregate_counters() {
    // The acceptance bar of the subsystem: the time-resolved series must
    // be consistent with the aggregate report to 1e-9 relative error.
    let frames = scene_frames(10);
    let report = run(OptLevel::Windowed { group: 8 }, &frames);
    let t = &report.telemetry;
    let cfg = GpuConfig::tesla_c2075();

    let total = report.stats.bytes_transacted(&cfg) as f64;
    assert!(total > 0.0);
    assert!(
        (t.total_dram_bytes() - total).abs() / total < 1e-9,
        "series integrate to {} DRAM bytes, aggregate says {total}",
        t.total_dram_bytes()
    );
    assert!(
        (t.mean_busy_occupancy() - report.occupancy.occupancy).abs() < 1e-9,
        "busy-weighted occupancy {} vs aggregate {}",
        t.mean_busy_occupancy(),
        report.occupancy.occupancy
    );
}

#[test]
fn dram_byte_counter_is_monotone_in_time() {
    let frames = scene_frames(8);
    let a = run(OptLevel::A, &frames);
    let f = run(OptLevel::F, &frames);
    let text = prometheus(&[
        ("level A".to_string(), &a.telemetry, None),
        ("level F".to_string(), &f.telemetry, None),
    ]);
    let exp = parse_exposition(&text);
    // Group the counter samples per pipeline, order by the q label.
    let mut per_pipeline: BTreeMap<String, Vec<(usize, f64)>> = BTreeMap::new();
    for s in &exp.samples["mogpu_dram_bytes_total"] {
        per_pipeline
            .entry(s.labels["pipeline"].clone())
            .or_default()
            .push((s.labels["q"].parse().unwrap(), s.value));
    }
    assert_eq!(per_pipeline.len(), 2);
    for (pipeline, mut samples) in per_pipeline {
        samples.sort_by_key(|&(q, _)| q);
        for w in samples.windows(2) {
            assert!(
                w[1].1 >= w[0].1,
                "{pipeline}: counter decreases at q {}",
                w[1].0
            );
        }
        assert!(samples.last().unwrap().1 > 0.0, "{pipeline}: empty counter");
    }
}

#[test]
fn hostile_pipeline_labels_survive_the_round_trip() {
    let frames = scene_frames(4);
    let report = run(OptLevel::C, &frames);
    let evil = "cam\\era \"7\"\nbasement";
    let gauges = KernelGauges::new(&report.metrics, &report.occupancy);
    let text = prometheus(&[(evil.to_string(), &report.telemetry, Some(gauges))]);
    let exp = parse_exposition(&text);
    for samples in exp.samples.values() {
        for s in samples {
            assert_eq!(s.labels["pipeline"], evil);
        }
    }
}

// ---- embedded report series and Chrome-trace counters ----

#[test]
fn profile_report_embeds_the_telemetry_series_as_json() {
    let frames = scene_frames(6);
    let report = profiled_run(OptLevel::F, &frames);
    let json = mogpu::json::to_value(&report).unwrap();
    let t = &json["telemetry"];
    assert_eq!(
        t["num_sms"],
        Value::U64(GpuConfig::tesla_c2075().num_sms as u64)
    );
    let sm = t["sm"].as_array().expect("per-SM series array");
    assert_eq!(sm.len(), GpuConfig::tesla_c2075().num_sms as usize);
    // The serialized series deserializes back to the identical value.
    let back: mogpu::sim::PipelineTelemetry =
        mogpu::json::from_value(t.clone()).expect("telemetry round-trips");
    assert_eq!(back.samples(), report.telemetry.samples());
    assert_eq!(back.sm[0].occupancy, report.telemetry.sm[0].occupancy);
    assert_eq!(back.dram_bandwidth, report.telemetry.dram_bandwidth);
}

#[test]
fn chrome_trace_gains_counter_tracks_on_the_same_clock() {
    let frames = scene_frames(6);
    let report = profiled_run(OptLevel::C, &frames);
    let mut builder = mogpu::sim::chrome_trace::TraceBuilder::new();
    let pid = builder.add_pipeline("level C", &report.schedule);
    builder.add_counters(pid, &report.telemetry);
    builder.add_stall_counters(pid, &report.telemetry, &report.stalls);
    let trace = mogpu::json::to_value(&builder.finish()).unwrap();
    let events = trace["traceEvents"].as_array().unwrap();
    let counters: Vec<&Value> = events
        .iter()
        .filter(|e| e["ph"] == Value::String("C".into()))
        .collect();
    assert!(!counters.is_empty(), "no counter events in trace");
    let makespan_us = 1e6 * report.telemetry.makespan;
    for e in &counters {
        assert_eq!(e["pid"], Value::U64(pid));
        let ts = e["ts"].as_f64().expect("numeric ts");
        assert!(
            ts >= 0.0 && ts <= makespan_us + 1e-9,
            "counter ts {ts} outside [0, {makespan_us}]"
        );
    }
    // The stall-reason track rides the same clock as the other counters.
    let stall_track: Vec<&&Value> = counters
        .iter()
        .filter(|e| e["name"] == Value::String("kernel stall reasons".into()))
        .collect();
    assert_eq!(stall_track.len(), report.telemetry.samples() + 1);
}

#[test]
fn multi_stream_report_carries_device_wide_telemetry() {
    let frames_a = scene_frames(6);
    let frames_b = SceneBuilder::new(Resolution::TINY)
        .seed(12)
        .walkers(3)
        .build()
        .render_sequence(6)
        .0
        .into_frames();
    let seeds: Vec<&[u8]> = vec![frames_a[0].as_slice(), frames_b[0].as_slice()];
    let mut multi = MultiGpuMog::<f64>::new(
        Resolution::TINY,
        MogParams::default(),
        OptLevel::F,
        &seeds,
        GpuConfig::tesla_c2075(),
    )
    .unwrap();
    let inputs = vec![frames_a[1..].to_vec(), frames_b[1..].to_vec()];
    let report = multi.process_all(&inputs).unwrap();
    let t = &report.telemetry;
    assert!(t.samples() > 0);
    assert!((t.makespan - report.makespan).abs() < 1e-12);
    for q in 0..t.samples() {
        assert!((0.0..=1.0).contains(&t.copy_engine_utilization[q]));
        assert!((0.0..=1.0).contains(&t.l2_hit_rate[q]));
    }
    // Both streams' kernels hit DRAM, so the device-wide series is live.
    assert!(t.total_dram_bytes() > 0.0);
}

// ---- deterministic serialization ----

#[test]
fn canonical_report_serialization_is_byte_stable() {
    let frames = scene_frames(6);
    let first =
        mogpu::json::to_string_canonical_pretty(&profiled_run(OptLevel::F, &frames)).unwrap();
    let second =
        mogpu::json::to_string_canonical_pretty(&profiled_run(OptLevel::F, &frames)).unwrap();
    assert_eq!(first, second);
    // Canonical form sorts keys: reserializing a parsed document is a
    // fixed point.
    let parsed: Value = mogpu::json::from_str(&first).unwrap();
    assert_eq!(
        mogpu::json::to_string_canonical_pretty(&parsed).unwrap(),
        first
    );
}

// ---- serving exposition (histogram families, snapshot counters) ----

/// A small two-stream serving run whose report carries the serving
/// section (histograms, snapshots, events).
fn serving_run() -> MultiStreamReport {
    let seqs: Vec<Vec<Frame<u8>>> = (0..2u64)
        .map(|s| {
            SceneBuilder::new(Resolution::TINY)
                .seed(11 + s)
                .walkers(2)
                .build()
                .render_sequence(7)
                .0
                .into_frames()
        })
        .collect();
    let seeds: Vec<&[u8]> = seqs.iter().map(|f| f[0].as_slice()).collect();
    let mut multi = MultiGpuMog::<f64>::new(
        Resolution::TINY,
        MogParams::default(),
        OptLevel::F,
        &seeds,
        GpuConfig::tesla_c2075(),
    )
    .unwrap();
    let inputs: Vec<Vec<Frame<u8>>> = seqs.iter().map(|f| f[1..].to_vec()).collect();
    multi.process_all(&inputs).unwrap()
}

fn le_value(s: &Sample) -> f64 {
    let le = &s.labels["le"];
    if le == "+Inf" {
        f64::INFINITY
    } else {
        le.parse().unwrap()
    }
}

#[test]
fn serving_exposition_emits_wellformed_cumulative_histograms() {
    let report = serving_run();
    let serving = &report.serving;
    let text = mogpu::sim::prometheus_serving(serving, usize::MAX);
    let exp = parse_exposition(&text);

    for family in [
        "mogpu_frame_latency_seconds",
        "mogpu_e2e_latency_seconds",
        "mogpu_pipeline_e2e_latency_seconds",
    ] {
        assert_eq!(exp.types[family], "histogram", "{family}");
        let buckets = &exp.samples[&format!("{family}_bucket")];
        let counts = &exp.samples[&format!("{family}_count")];
        let sums = &exp.samples[&format!("{family}_sum")];

        // Group buckets by their full label set minus `le`.
        let mut series: BTreeMap<Vec<(String, String)>, Vec<&Sample>> = BTreeMap::new();
        for b in buckets {
            let key: Vec<(String, String)> = b
                .labels
                .iter()
                .filter(|(k, _)| k.as_str() != "le")
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect();
            series.entry(key).or_default().push(b);
        }
        assert_eq!(
            series.len(),
            counts.len(),
            "{family}: one series per _count"
        );
        for (key, bs) in &series {
            // `le` bounds strictly increasing, cumulative counts
            // non-decreasing, terminated by a `+Inf` bucket.
            let mut sorted = bs.clone();
            sorted.sort_by(|a, b| le_value(a).total_cmp(&le_value(b)));
            for w in sorted.windows(2) {
                assert!(le_value(w[0]) < le_value(w[1]), "{family}: duplicate le");
                assert!(
                    w[0].value <= w[1].value,
                    "{family}: cumulative bucket counts decreased for {key:?}"
                );
            }
            let inf = sorted.last().unwrap();
            assert!(le_value(inf).is_infinite(), "{family}: missing +Inf bucket");
            let matches = |c: &&Sample| key.iter().all(|(k, v)| c.labels.get(k) == Some(v));
            let count = counts
                .iter()
                .find(matches)
                .unwrap_or_else(|| panic!("{family}: no _count for {key:?}"));
            assert_eq!(inf.value, count.value, "{family}: +Inf bucket != _count");
            let sum = sums.iter().find(matches).unwrap();
            // Exact `_sum`: mean latency must sit within the observed
            // bucket range (sanity that sum/count are consistent).
            if count.value > 0.0 {
                let mean = sum.value / count.value;
                assert!(mean > 0.0 && mean.is_finite(), "{family}: bad _sum");
            }
        }
    }

    // Per-stream `_count` matches the report's completion counters.
    let counts = &exp.samples["mogpu_frame_latency_seconds_count"];
    for s in &serving.streams {
        let c = counts
            .iter()
            .find(|c| c.labels["stream"] == s.stream.to_string())
            .unwrap();
        assert_eq!(c.value, s.frames_completed as f64);
        assert_eq!(c.labels["device"], serving.device);
    }
}

#[test]
fn serving_counters_are_monotone_across_snapshots() {
    let report = serving_run();
    let serving = &report.serving;
    assert!(serving.snapshots.len() > 1, "want multiple windows");

    let counter_families = [
        "mogpu_frames_completed_total",
        "mogpu_slo_violations_total",
        "mogpu_serving_dram_bytes_total",
    ];
    let mut last: BTreeMap<String, f64> = BTreeMap::new();
    let mut last_clock = -1.0f64;
    for i in 0..serving.snapshots.len() {
        let exp = parse_exposition(&mogpu::sim::prometheus_serving(serving, i));
        for family in counter_families {
            for s in &exp.samples[family] {
                let key = format!("{family}{:?}", s.labels);
                let prev = last.insert(key.clone(), s.value).unwrap_or(0.0);
                assert!(
                    s.value >= prev,
                    "{key} went backwards between snapshots {}: {} -> {}",
                    i,
                    prev,
                    s.value
                );
            }
        }
        // Histogram _count is a counter too.
        for s in &exp.samples["mogpu_e2e_latency_seconds_count"] {
            let key = format!("e2e_count{:?}", s.labels);
            let prev = last.insert(key.clone(), s.value).unwrap_or(0.0);
            assert!(s.value >= prev, "{key} went backwards");
        }
        let clock = exp.samples["mogpu_serving_clock_seconds"][0].value;
        assert!(clock > last_clock, "snapshot clock must advance");
        last_clock = clock;
    }
    // The last snapshot's totals equal the final per-stream counters.
    let exp = parse_exposition(&mogpu::sim::prometheus_serving(
        serving,
        serving.snapshots.len() - 1,
    ));
    let done: f64 = exp.samples["mogpu_frames_completed_total"]
        .iter()
        .map(|s| s.value)
        .sum();
    let total: u64 = serving.streams.iter().map(|s| s.frames_completed).sum();
    assert_eq!(done, total as f64);
}

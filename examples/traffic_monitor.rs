//! Traffic-monitoring scenario (the urban-traffic use case of the paper's
//! MoG reference [20]): fast vehicles on a road with headlight-like
//! brightness variation. Compares the 3-Gaussian and 5-Gaussian
//! configurations of Section V-B — more components track the multimodal
//! road surface better at a higher compute cost.
//!
//! Run with: `cargo run --release --example traffic_monitor`

use mogpu::metrics::MaskConfusion;
use mogpu::prelude::*;

fn build_traffic_scene(resolution: Resolution) -> Scene {
    let w = resolution.width as f64;
    let mut builder = SceneBuilder::new(resolution)
        .seed(1999)
        .base_level(90.0) // asphalt
        .bimodal_fraction(0.20) // strongly multimodal: shadows + glare
        .bimodal_contrast(50.0)
        .noise_sd(3.0);
    // Vehicles: wide, fast, in two lanes moving opposite directions.
    for lane in 0..2 {
        for car in 0..2 {
            builder = builder.object(MovingObject {
                shape: ObjectShape::Rect {
                    w: resolution.width / 8,
                    h: resolution.height / 12,
                },
                x0: (car as f64) * w / 2.0,
                y0: (0.35 + 0.25 * lane as f64) * resolution.height as f64,
                vx: if lane == 0 { 4.0 } else { -5.0 },
                vy: 0.0,
                level: 200.0 + 20.0 * car as f64,
            });
        }
    }
    builder.build()
}

fn main() {
    let resolution = Resolution::QQVGA;
    let scene = build_traffic_scene(resolution);
    let n_frames = 40;
    let (frames, truths) = scene.render_sequence(n_frames);
    let frames = frames.into_frames();
    let truths = truths.into_frames();

    println!("traffic monitor — {resolution}, {n_frames} frames, 20% multimodal road pixels");
    println!();
    println!(
        "{:<12} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "config", "kern ms", "occup", "recall", "precision", "F1"
    );

    for k in [3usize, 5] {
        for level in [OptLevel::C, OptLevel::F] {
            let mut gpu = GpuMog::<f64>::new(
                resolution,
                MogParams::new(k),
                level,
                frames[0].as_slice(),
                GpuConfig::tesla_c2075(),
            )
            .expect("pipeline");
            let report = gpu.process_all(&frames[1..]).expect("processing");

            let mut confusion = MaskConfusion::default();
            for i in report.masks.len() - 12..report.masks.len() {
                confusion.merge(&mask_confusion(&report.masks[i], &truths[i + 1]));
            }
            println!(
                "{:<12} {:>9.3} {:>8.1}% {:>8.1}% {:>8.1}% {:>9.3}",
                format!("{}G / {}", k, level.name()),
                1e3 * report.kernel_time_per_frame(),
                100.0 * report.occupancy.occupancy,
                100.0 * confusion.recall(),
                100.0 * confusion.precision(),
                confusion.f1(),
            );
        }
    }

    println!();
    println!("5-Gaussian models absorb the multimodal road surface at ~5/3 the");
    println!("kernel cost (paper Fig. 11); the algorithm-specific optimizations");
    println!("(level F) help both configurations.");
}

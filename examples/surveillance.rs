//! Video surveillance scenario: the workload the paper's introduction
//! motivates. A fixed camera watches a scene with flickering background
//! elements (foliage/screens) while people walk through; the example
//! climbs the paper's whole optimization ladder A -> F and reports, per
//! level, detection quality and the architectural counters — a miniature
//! of the paper's Figs. 6-8 on a live workload.
//!
//! Run with: `cargo run --release --example surveillance`

use mogpu::metrics::MaskConfusion;
use mogpu::prelude::*;

fn main() {
    let resolution = Resolution::QQVGA;
    let scene = SceneBuilder::new(resolution)
        .seed(2014)
        .walkers(4)
        .bimodal_fraction(0.10) // waving foliage / flickering displays
        .bimodal_contrast(70.0)
        .noise_sd(2.5)
        .build();
    let n_frames = 40;
    let (frames, truths) = scene.render_sequence(n_frames);
    let frames = frames.into_frames();
    let truths = truths.into_frames();

    println!("surveillance scenario — {resolution}, {n_frames} frames, 10% bimodal pixels");
    println!();
    println!(
        "{:<6} {:>9} {:>9} {:>9} {:>10} {:>10} {:>8} {:>8}",
        "level", "kern ms", "e2e ms", "speedup", "branchEff", "memEff", "occup", "F1"
    );

    let cpu = CpuModel::default();
    let mut serial_per_frame = None;

    for level in OptLevel::LADDER
        .into_iter()
        .chain([OptLevel::Windowed { group: 8 }])
    {
        let mut gpu = GpuMog::<f64>::new(
            resolution,
            MogParams::default(),
            level,
            frames[0].as_slice(),
            GpuConfig::tesla_c2075(),
        )
        .expect("pipeline");
        let report = gpu.process_all(&frames[1..]).expect("processing");

        // The CPU reference executes the sorted algorithm: calibrate the
        // serial time from level C's counters (same algorithm, coalesced
        // kernel) and reuse it for every level's speedup.
        if level == OptLevel::C {
            serial_per_frame = Some(cpu.serial_time(&report.stats) / report.frames as f64);
        }

        // Post-warm-up detection quality.
        let mut confusion = MaskConfusion::default();
        for i in report.masks.len() - 10..report.masks.len() {
            confusion.merge(&mask_confusion(&report.masks[i], &truths[i + 1]));
        }

        let speedup = serial_per_frame
            .map(|s| format!("{:8.1}x", report.speedup_over(s)))
            .unwrap_or_else(|| "      --".into());
        println!(
            "{:<6} {:>9.3} {:>9.3} {:>9} {:>9.1}% {:>9.1}% {:>7.1}% {:>8.3}",
            level.name(),
            1e3 * report.kernel_time_per_frame(),
            1e3 * report.gpu_time_per_frame(),
            speedup,
            100.0 * report.metrics.branch_efficiency,
            100.0 * report.metrics.mem_access_efficiency,
            100.0 * report.occupancy.occupancy,
            confusion.f1(),
        );
    }

    println!();
    println!("note: speedups are vs. the modelled single-thread Xeon E5-2620 running");
    println!("the sorted serial algorithm (paper reference); level A/B include");
    println!("sequential PCIe transfers, later levels overlap them.");

    // Foreground validation (the post-pass of the paper's MoG reference
    // [20]): clean the raw level-F mask and count the walkers.
    use mogpu::frame::{connected_components, open3, remove_small_blobs};
    let mut gpu = GpuMog::<f64>::new(
        resolution,
        MogParams::default(),
        OptLevel::F,
        frames[0].as_slice(),
        GpuConfig::tesla_c2075(),
    )
    .expect("pipeline");
    let report = gpu.process_all(&frames[1..]).expect("processing");
    let last = report.masks.len() - 1;
    let raw = &report.masks[last];
    let cleaned = remove_small_blobs(&open3(raw), 12);
    let (_, raw_blobs) = connected_components(raw);
    let (_, blobs) = connected_components(&cleaned);
    println!();
    println!(
        "foreground validation on the final frame: {} raw blobs -> {} after\nopening + min-area filter (scene contains 4 walkers):",
        raw_blobs.len(),
        blobs.len()
    );
    for b in &blobs {
        println!(
            "  blob {:>2}: area {:>4} px, bbox {}x{} at ({}, {})",
            b.label,
            b.area,
            b.width(),
            b.height(),
            b.bbox.0,
            b.bbox.1
        );
    }
}

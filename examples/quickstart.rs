//! Quickstart: subtract the background of a synthetic scene with the
//! fully optimized GPU pipeline (paper level F) and print the performance
//! counters the paper reports.
//!
//! Run with: `cargo run --release --example quickstart`

use mogpu::prelude::*;

fn main() {
    // 1. A synthetic surveillance scene: static multimodal background,
    //    three moving objects, ground-truth masks for free.
    let resolution = Resolution::QQVGA;
    let scene = SceneBuilder::new(resolution).seed(7).walkers(3).build();
    let (frames, truths) = scene.render_sequence(30);
    let frames = frames.into_frames();
    let truths = truths.into_frames();

    // 2. The GPU background subtractor at optimization level F
    //    (coalesced + overlapped + no-sort + predicated + register-tuned).
    let mut gpu = GpuMog::<f64>::new(
        resolution,
        MogParams::default(),
        OptLevel::F,
        frames[0].as_slice(),
        GpuConfig::tesla_c2075(),
    )
    .expect("pipeline construction");

    // 3. Process the sequence.
    let report = gpu.process_all(&frames[1..]).expect("processing");

    // 4. Detection quality against the scene's ground truth (last frame,
    //    after the model has warmed up).
    let last = report.masks.len() - 1;
    let confusion = mask_confusion(&report.masks[last], &truths[last + 1]);

    println!(
        "mogpu quickstart — level F on {resolution}, {} frames",
        report.frames
    );
    println!("-----------------------------------------------------------");
    println!(
        "foreground recall     : {:5.1} %",
        100.0 * confusion.recall()
    );
    println!(
        "foreground precision  : {:5.1} %",
        100.0 * confusion.precision()
    );
    println!(
        "pixel accuracy        : {:5.1} %",
        100.0 * confusion.accuracy()
    );
    println!("-----------------------------------------------------------");
    println!(
        "SM occupancy          : {:5.1} %",
        100.0 * report.occupancy.occupancy
    );
    println!(
        "branch efficiency     : {:5.1} %",
        100.0 * report.metrics.branch_efficiency
    );
    println!(
        "memory access eff.    : {:5.1} %",
        100.0 * report.metrics.mem_access_efficiency
    );
    println!(
        "store transactions    : {}",
        report.metrics.store_transactions
    );
    println!(
        "kernel time / frame   : {:8.3} ms (modelled Tesla C2075)",
        1e3 * report.kernel_time_per_frame()
    );
    println!(
        "end-to-end / frame    : {:8.3} ms (incl. overlapped PCIe)",
        1e3 * report.gpu_time_per_frame()
    );

    // 5. Compare with the modelled single-thread CPU reference.
    let cpu = CpuModel::default();
    let serial_per_frame = cpu.serial_time(&report.stats) / report.frames as f64;
    println!(
        "CPU serial / frame    : {:8.3} ms (modelled Xeon E5-2620)",
        1e3 * serial_per_frame
    );
    println!(
        "speedup               : {:8.1} x",
        report.speedup_over(serial_per_frame)
    );
}

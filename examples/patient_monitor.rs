//! Patient-monitoring scenario — the third application domain of the
//! paper's introduction ("video surveillance, industry vision, and
//! patient monitoring systems").
//!
//! A camera watches a hospital bed: the scene is mostly static and dim,
//! the motion of interest is slow and subtle (a patient shifting, an arm
//! moving), and a monitor in the corner flickers — classic multimodal
//! background. The clinically relevant output is a per-frame *activity
//! level* (foreground fraction) and an alarm when sustained motion is
//! detected; this example derives both from the level-F GPU pipeline and
//! demonstrates the adaptive-K comparator on the same feed.
//!
//! Run with: `cargo run --release --example patient_monitor`

use mogpu::core::AdaptiveGpuMog;
use mogpu::prelude::*;

fn build_ward_scene(res: Resolution) -> Scene {
    SceneBuilder::new(res)
        .seed(0xBED)
        .base_level(70.0) // dim ward lighting
        .noise_sd(3.0) // higher sensor noise in low light
        .bimodal_fraction(0.03) // the vitals monitor flickers
        .bimodal_contrast(90.0)
        // The patient's arm: small, slow, elliptical.
        .object(MovingObject {
            shape: ObjectShape::Ellipse {
                rx: res.width / 16,
                ry: res.height / 20,
            },
            x0: res.width as f64 * 0.45,
            y0: res.height as f64 * 0.55,
            vx: 0.4,
            vy: 0.15,
            level: 150.0,
        })
        .build()
}

fn main() {
    let res = Resolution::QQVGA;
    let scene = build_ward_scene(res);
    let n_frames = 60;
    let (frames, truths) = scene.render_sequence(n_frames);
    let frames = frames.into_frames();
    let truths = truths.into_frames();

    // Slow patient motion would be absorbed by the default adaptation
    // rate (a slowly moving arm "becomes background"); clinical use wants
    // a long memory, so raise the retention factor.
    let params = MogParams {
        alpha: 0.995,
        ..MogParams::default()
    };
    let mut gpu = GpuMog::<f64>::new(
        res,
        params,
        OptLevel::F,
        frames[0].as_slice(),
        GpuConfig::tesla_c2075(),
    )
    .expect("pipeline");
    let report = gpu.process_all(&frames[1..]).expect("processing");

    // Activity curve: foreground fraction per frame, with a sustained-
    // motion alarm (a 5-frame window above threshold).
    println!("patient monitor — {res}, {n_frames} frames, dim multimodal ward");
    println!();
    println!("frame  activity  alarm   (x = detected motion level)");
    let threshold = 0.002;
    let mut window = [false; 5];
    let warmup = 20;
    for (i, mask) in report.masks.iter().enumerate() {
        let activity = mask.fraction_set();
        window[i % window.len()] = activity > threshold;
        let alarm = i >= warmup && window.iter().all(|&w| w);
        if i % 5 == 4 {
            let bar = "x".repeat((activity * 2000.0).round() as usize);
            println!(
                "{:>5} {:>8.3}% {:>6} {}",
                i + 1,
                100.0 * activity,
                if alarm { "ALARM" } else { "-" },
                bar
            );
        }
    }

    // Detection quality on the final frames.
    let mut confusion = mogpu::metrics::MaskConfusion::default();
    for i in report.masks.len() - 15..report.masks.len() {
        confusion.merge(&mask_confusion(&report.masks[i], &truths[i + 1]));
    }
    println!();
    println!(
        "motion recall {:.1}%, precision {:.1}% over the last 15 frames",
        100.0 * confusion.recall(),
        100.0 * confusion.precision()
    );

    // The mostly-static ward is the best case for the adaptive-K
    // comparator (Section II): nearly every pixel needs one component.
    let mut adaptive = AdaptiveGpuMog::<f64>::new(
        res,
        MogParams {
            alpha: 0.995,
            ..MogParams::new(5)
        },
        frames[0].as_slice(),
        GpuConfig::tesla_c2075(),
    )
    .expect("adaptive pipeline");
    let adaptive_report = adaptive.process_all(&frames[1..]).expect("processing");
    println!();
    println!(
        "adaptive-K on the same feed: {:.2} mean components (of 5), kernel {:.4} ms \
         vs fixed-F {:.4} ms",
        adaptive.mean_active(),
        1e3 * adaptive_report.kernel_time_per_frame(),
        1e3 * report.kernel_time_per_frame(),
    );
    println!("(a ward camera is adaptivity's best case — see exp_adaptive for why");
    println!("the paper still argues against it on busier scenes)");
}

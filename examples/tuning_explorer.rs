//! Tuning explorer: sweep the windowed-MoG frame-group size (paper
//! Fig. 10) and the floating-point precision (paper Fig. 12) on a single
//! workload, printing the trade-off tables a practitioner would use to
//! pick a configuration.
//!
//! Run with: `cargo run --release --example tuning_explorer`

use mogpu::core::DeviceReal;
use mogpu::prelude::*;

fn run_level<T: DeviceReal>(level: OptLevel, frames: &[Frame<u8>]) -> RunReport {
    let mut gpu = GpuMog::<T>::new(
        frames[0].resolution(),
        MogParams::default(),
        level,
        frames[0].as_slice(),
        GpuConfig::tesla_c2075(),
    )
    .expect("pipeline");
    gpu.process_all(&frames[1..]).expect("processing")
}

fn main() {
    let resolution = Resolution::QQVGA;
    let frames = SceneBuilder::new(resolution)
        .seed(77)
        .walkers(3)
        .build()
        .render_sequence(33)
        .0
        .into_frames();

    println!(
        "tuning explorer — {resolution}, {} frames",
        frames.len() - 1
    );
    println!();
    println!("windowed MoG group-size sweep (double precision; paper Fig. 10):");
    println!(
        "{:<8} {:>9} {:>8} {:>9} {:>12}",
        "group", "kern ms", "occup", "memEff", "shared B/blk"
    );
    let f = run_level::<f64>(OptLevel::F, &frames);
    println!(
        "{:<8} {:>9.3} {:>7.1}% {:>8.1}% {:>12}",
        "F (ref)",
        1e3 * f.kernel_time_per_frame(),
        100.0 * f.occupancy.occupancy,
        100.0 * f.metrics.mem_access_efficiency,
        0
    );
    for group in [1usize, 2, 4, 8, 16, 32] {
        let level = OptLevel::Windowed { group };
        let r = run_level::<f64>(level, &frames);
        println!(
            "{:<8} {:>9.3} {:>7.1}% {:>8.1}% {:>12}",
            level.name(),
            1e3 * r.kernel_time_per_frame(),
            100.0 * r.occupancy.occupancy,
            100.0 * r.metrics.mem_access_efficiency,
            level.shared_bytes(128, 3, 8),
        );
    }

    println!();
    println!("precision sweep at level F (paper Fig. 12):");
    println!(
        "{:<8} {:>9} {:>8} {:>9} {:>12}",
        "type", "kern ms", "occup", "memEff", "DRAM tx"
    );
    let d = run_level::<f64>(OptLevel::F, &frames);
    let s = run_level::<f32>(OptLevel::F, &frames);
    for (name, r) in [("double", &d), ("float", &s)] {
        println!(
            "{:<8} {:>9.3} {:>7.1}% {:>8.1}% {:>12}",
            name,
            1e3 * r.kernel_time_per_frame(),
            100.0 * r.occupancy.occupancy,
            100.0 * r.metrics.mem_access_efficiency,
            r.metrics.total_transactions,
        );
    }
    println!();
    println!(
        "float halves the parameter traffic ({} -> {} transactions) and lifts",
        d.metrics.total_transactions, s.metrics.total_transactions
    );
    println!("the register ceiling; the paper accepts its ~5% quality loss.");
}
